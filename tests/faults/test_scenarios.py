"""Tests for the canned failover scenarios (ISSUE acceptance criteria)."""

import numpy as np
import pytest

from repro.experiments.common import build_world
from repro.faults.recovery import ImpactMeter, prefix_sample
from repro.faults.scenarios import (
    flapping_upstream,
    pop_failure,
    resolve_corridor,
    single_link_cut,
    transit_degradation,
)

LIMIT = 8


def scenario_rng():
    return np.random.default_rng(7)


def full_snapshot(service):
    return ImpactMeter(
        service, prefix_sample(tuple(service.topology.prefix_location), limit=LIMIT)
    ).snapshot()


class TestResolveCorridor:
    def test_direct_circuit_is_the_corridor(self, fault_world):
        assert resolve_corridor(fault_world.service, "SJS", "HK") == ("SJS", "HK")

    def test_indirect_corridor_picks_long_haul_on_path(self, fault_world):
        # AMS->ASH has no direct circuit; it rides the trans-Atlantic one.
        assert resolve_corridor(fault_world.service, "AMS", "ASH") == ("LON", "ASH")


class TestSingleLinkCut:
    def test_acceptance_criteria(self, fault_world):
        service = fault_world.service
        healthy = full_snapshot(service)

        result = single_link_cut(service, scenario_rng(), prefix_limit=LIMIT)

        # (a) Converged without ConvergenceError (we got here) and the
        #     engine is quiet again.
        assert service.network.engine.converged
        # (b) No prefix is left without a valid egress at any point: the
        #     production mesh is biconnected around this corridor.
        for impact in result.impacts:
            assert not impact.blackholes_during
            assert not impact.blackholes_after
            assert not impact.routes_lost
        assert not result.permanent_blackholes
        # (c) Media loss during failover is bounded and recovers.
        media = result.media
        assert media.failover_loss_percent < 25.0
        assert media.failover_loss_percent >= media.steady_loss_percent
        assert abs(media.recovered_loss_percent - media.steady_loss_percent) < 1.0
        # Traffic actually rerouted while the circuit was dark.
        assert result.notes["route_during"] != result.notes["route_before"]
        assert result.notes["route_after"] == result.notes["route_before"]
        # The scenario repaired everything it touched.
        assert full_snapshot(service).states == healthy.states

    def test_determinism_across_fresh_worlds(self):
        results = []
        for _ in range(2):
            world = build_world("small", seed=42)
            results.append(
                single_link_cut(
                    world.service, scenario_rng(), prefix_limit=LIMIT
                )
            )
        one, two = results
        assert one.event_log == two.event_log
        assert [i.messages for i in one.impacts] == [i.messages for i in two.impacts]
        assert [sorted(i.shifted) for i in one.impacts] == [
            sorted(i.shifted) for i in two.impacts
        ]
        assert one.media.steady_loss_percent == two.media.steady_loss_percent
        assert one.media.failover_loss_percent == two.media.failover_loss_percent
        assert one.notes == two.notes


class TestPopFailure:
    def test_recatchment_and_repair(self, fault_world):
        service = fault_world.service
        healthy = full_snapshot(service)

        result = pop_failure(service, scenario_rng(), prefix_limit=LIMIT)

        down, up = result.impacts
        # Losing a whole PoP opens a real mid-failover blackhole window...
        assert down.blackholes_during
        # ...but convergence clears it: every prefix finds another egress
        # (SYD-entry cells excepted only *while* stranded; after repair
        # nothing stays dark).
        assert not result.permanent_blackholes
        # Anycast re-catchment moved the failed PoP's users elsewhere.
        assert result.notes["users_served_by_failed_pop"] > 0
        assert result.notes["users_recaught_elsewhere"] > 0
        assert result.notes["entry_after_matches_before"] is True
        assert full_snapshot(service).states == healthy.states


class TestFlappingUpstream:
    def test_flaps_are_identical_and_state_restores(self, fault_world):
        result = flapping_upstream(
            fault_world.service, scenario_rng(), flaps=2, prefix_limit=LIMIT
        )
        per_flap = result.notes["messages_per_flap"]
        assert len(per_flap) == 2
        # Every flap replays the same table: identical message bills.
        assert len(set(per_flap)) == 1
        assert result.notes["state_restored"] is True

    def test_zero_flaps_rejected(self, fault_world):
        with pytest.raises(ValueError):
            flapping_upstream(fault_world.service, scenario_rng(), flaps=0)


class TestTransitDegradation:
    def test_pure_data_plane(self, fault_world):
        result = transit_degradation(
            fault_world.service, scenario_rng(), prefix_limit=LIMIT
        )
        assert result.total_messages == 0
        assert result.notes["control_plane_quiet"] is True
        assert result.notes["rtt_delta_ms"] > 0
        media = result.media
        assert media.failover_loss_percent > media.steady_loss_percent
