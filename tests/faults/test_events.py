"""Unit tests for fault events, the simulated clock, and timelines."""

import json

import numpy as np
import pytest

from repro.faults.events import (
    FaultEvent,
    FaultTimeline,
    LinkDown,
    LinkUp,
    PopDown,
    PopUp,
    SessionDown,
    SessionUp,
    SimulatedClock,
    TransitDegrade,
    TransitRestore,
    event_from_dict,
    event_to_dict,
    events_from_json,
    events_to_json,
    random_flap_timeline,
)

LINKS = (("LON", "ASH"), ("AMS", "SIN"), ("SJS", "HK"))


class TestClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimulatedClock()
        assert clock.now_s == 0.0
        clock.advance_to(12.5)
        assert clock.now_s == 12.5

    def test_advance_to_same_time_is_allowed(self):
        clock = SimulatedClock(now_s=5.0)
        clock.advance_to(5.0)
        assert clock.now_s == 5.0

    def test_cannot_go_backwards(self):
        clock = SimulatedClock(now_s=60.0)
        with pytest.raises(ValueError):
            clock.advance_to(59.9)


class TestTimeline:
    def test_events_sort_by_time(self):
        timeline = FaultTimeline()
        timeline.add(LinkUp(time_s=30.0, a="LON", b="ASH"))
        timeline.add(LinkDown(time_s=10.0, a="LON", b="ASH"))
        assert [e.time_s for e in timeline] == [10.0, 30.0]
        assert timeline.end_s == 30.0

    def test_ties_keep_insertion_order(self):
        timeline = FaultTimeline()
        first = LinkDown(time_s=10.0, a="SJS", b="HK")
        second = LinkDown(time_s=10.0, a="SJS", b="TYO")
        timeline.add(first).add(second)
        assert timeline.events() == (first, second)

    def test_extend_and_len(self):
        timeline = FaultTimeline().extend(
            [LinkDown(time_s=1.0, a="A", b="B"), LinkUp(time_s=2.0, a="A", b="B")]
        )
        assert len(timeline) == 2

    def test_empty_timeline_end_is_zero(self):
        assert FaultTimeline().end_s == 0.0

    def test_describe_lines(self):
        timeline = FaultTimeline().extend(
            [
                LinkDown(time_s=60.0, a="LON", b="ASH"),
                PopDown(time_s=90.0, pop="SIN"),
                SessionDown(time_s=120.0, asn=101),
                TransitDegrade(
                    time_s=150.0, regions=("Europe", "Asia"), extra_loss=0.05
                ),
            ]
        )
        lines = timeline.describe()
        assert "link-down" in lines[0] and "LON==ASH" in lines[0]
        assert "pop-down" in lines[1] and "SIN" in lines[1]
        assert "AS101@all-sessions" in lines[2]
        assert "+5.0% loss" in lines[3]


class TestRandomFlapTimeline:
    def test_same_seed_same_timeline(self):
        one = random_flap_timeline(np.random.default_rng(11), links=LINKS)
        two = random_flap_timeline(np.random.default_rng(11), links=LINKS)
        assert one.describe() == two.describe()

    def test_different_seed_differs(self):
        one = random_flap_timeline(np.random.default_rng(11), links=LINKS)
        two = random_flap_timeline(np.random.default_rng(12), links=LINKS)
        assert one.describe() != two.describe()

    def test_every_down_has_a_later_up(self):
        timeline = random_flap_timeline(
            np.random.default_rng(3), links=LINKS, failures_per_hour=30.0
        )
        downs = [e for e in timeline if isinstance(e, LinkDown)]
        ups = [e for e in timeline if isinstance(e, LinkUp)]
        assert downs, "timeline drew no failures"
        assert len(downs) == len(ups)

    def test_no_double_fail_per_link(self):
        timeline = random_flap_timeline(
            np.random.default_rng(3),
            links=LINKS,
            failures_per_hour=60.0,
            mean_repair_s=600.0,
        )
        up_count: dict[frozenset, int] = {}
        for event in timeline:
            key = frozenset((event.a, event.b))
            if isinstance(event, LinkDown):
                # A link may only fail while it is up.
                assert up_count.get(key, 0) == 0, key
                up_count[key] = up_count.get(key, 0) + 1
            else:
                up_count[key] -= 1

    def test_everything_repaired_within_duration(self):
        timeline = random_flap_timeline(
            np.random.default_rng(5), links=LINKS, duration_s=1800.0
        )
        assert timeline.end_s <= 1800.0

    def test_empty_links_rejected(self):
        with pytest.raises(ValueError):
            random_flap_timeline(np.random.default_rng(0), links=())

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            random_flap_timeline(
                np.random.default_rng(0), links=LINKS, duration_s=0.0
            )


class TestEventSerialisation:
    EVENTS = (
        LinkDown(time_s=10.0, a="LON", b="ASH"),
        LinkUp(time_s=30.0, a="LON", b="ASH"),
        PopDown(time_s=5.0, pop="SIN"),
        PopUp(time_s=50.0, pop="SIN"),
        SessionDown(time_s=1.0, asn=64512, router_id="r1.lon"),
        SessionDown(time_s=1.0, asn=64512),
        SessionUp(time_s=9.0, asn=64512, router_id=None),
        TransitDegrade(
            time_s=0.0, regions=("EU", "NA"), extra_loss=0.05, extra_delay_ms=40.0
        ),
        TransitRestore(time_s=600.0, regions=("EU", "NA")),
    )

    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: type(e).__name__)
    def test_round_trip_is_exact(self, event):
        restored = event_from_dict(event_to_dict(event))
        assert restored == event
        assert type(restored) is type(event)

    def test_regions_tuple_restored_from_json_list(self):
        event = TransitDegrade(time_s=0.0, regions=("EU", "NA"))
        payload = json.loads(json.dumps(event_to_dict(event)))
        restored = event_from_dict(payload)
        assert restored.regions == ("EU", "NA")
        assert isinstance(restored.regions, tuple)

    def test_events_json_round_trip_is_byte_stable(self):
        text = events_to_json(self.EVENTS)
        restored = events_from_json(text)
        assert restored == self.EVENTS
        assert events_to_json(restored) == text

    def test_unknown_type_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="LinkDowm.*LinkDown"):
            event_from_dict({"type": "LinkDowm", "time_s": 0.0, "a": "A", "b": "B"})

    def test_missing_type_rejected(self):
        with pytest.raises(ValueError, match="'type'"):
            event_from_dict({"time_s": 0.0, "a": "A", "b": "B"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="pop_code"):
            event_from_dict({"type": "PopDown", "time_s": 0.0, "pop_code": "SIN"})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError, match="PopDown"):
            event_from_dict({"type": "PopDown", "time_s": 0.0})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError, match="object"):
            event_from_dict(["PopDown"])

    def test_non_array_events_json_rejected(self):
        with pytest.raises(ValueError, match="array"):
            events_from_json('{"type": "PopDown"}')

    def test_unregistered_event_type_rejected_on_write(self):
        class Bogus(FaultEvent):
            pass

        with pytest.raises(TypeError):
            event_to_dict(Bogus(time_s=0.0))


class TestTimelineSerialisation:
    def test_round_trip_preserves_events_and_order(self):
        timeline = FaultTimeline()
        timeline.add(LinkUp(time_s=30.0, a="LON", b="ASH"))
        timeline.add(LinkDown(time_s=10.0, a="LON", b="ASH"))
        timeline.add(PopDown(time_s=10.0, pop="SIN"))
        restored = FaultTimeline.from_json(timeline.to_json())
        assert restored.events() == timeline.events()

    def test_to_json_is_byte_stable(self):
        timeline = FaultTimeline().extend(
            [LinkDown(time_s=1.0, a="A", b="B"), LinkUp(time_s=2.0, a="A", b="B")]
        )
        text = timeline.to_json()
        assert FaultTimeline.from_json(text).to_json() == text
