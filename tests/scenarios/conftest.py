"""Scenario-test fixtures: a private world scenarios may fault.

Loading a scenario with control-plane faults mutates the service (and
restores it), so these tests get their own package-scoped world rather
than the shared session ``small_world``.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import World, build_world


@pytest.fixture(scope="package")
def scenario_world() -> World:
    """A small world scenario tests may fault (and must restore)."""
    return build_world("small", seed=42)
