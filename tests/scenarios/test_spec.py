"""Spec schema tests: byte-stable JSON round trips, loud rejection."""

import pytest

from repro.faults.events import LinkDown, PopDown, TransitDegrade
from repro.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    WorldSpec,
    canned_names,
    canned_scenario,
)


def full_spec() -> ScenarioSpec:
    """A spec exercising every field (faults, capacity, satellite)."""
    return ScenarioSpec(
        name="kitchen-sink",
        world=WorldSpec(
            scale="medium",
            seed=7,
            geoip_errors=True,
            pops_down=("SYD",),
            pop_capacity=(("LON", 0.5), ("*", 1.25)),
        ),
        seed=3,
        n_users=64,
        calls_per_user_day=2.5,
        days=2,
        multiparty_fraction=0.2,
        arrival_profile="flash_crowd",
        flash_attendees=99,
        flash_hosts=3,
        flash_hour_cet=17.25,
        flash_window_h=0.75,
        steering_policy="cost_budgeted",
        last_mile="geo_satellite",
        satellite_delay_ms=300.0,
        satellite_loss=0.02,
        faults=(
            PopDown(time_s=0.0, pop="SIN"),
            LinkDown(time_s=1.0, a="SJS", b="HK"),
            TransitDegrade(
                time_s=2.0,
                regions=("Europe", "North and Central America"),
                extra_loss=0.03,
                extra_delay_ms=25.0,
            ),
        ),
        description="every knob at once",
    )


class TestRoundTrip:
    @pytest.mark.parametrize("name", canned_names())
    def test_canned_specs_round_trip_byte_stably(self, name):
        spec = canned_scenario(name)
        text = spec.to_json()
        assert ScenarioSpec.from_json(text).to_json() == text
        assert ScenarioSpec.from_json(text) == spec

    def test_full_spec_round_trips_byte_stably(self):
        spec = full_spec()
        text = spec.to_json()
        restored = ScenarioSpec.from_json(text)
        assert restored == spec
        assert restored.to_json() == text

    def test_world_spec_round_trips_byte_stably(self):
        world = full_spec().world
        text = world.to_json()
        assert WorldSpec.from_json(text).to_json() == text

    def test_restored_faults_are_event_objects(self):
        restored = ScenarioSpec.from_json(full_spec().to_json())
        assert isinstance(restored.faults[0], PopDown)
        assert isinstance(restored.faults[2], TransitDegrade)
        assert restored.faults[2].regions == (
            "Europe",
            "North and Central America",
        )

    def test_specs_are_hashable(self):
        assert {full_spec(): 1}[full_spec()] == 1

    def test_list_inputs_normalise_to_tuples(self):
        spec = ScenarioSpec(
            name="x", world=WorldSpec(pops_down=["SIN"], pop_capacity=[["LON", 1.0]])
        )
        assert spec.world.pops_down == ("SIN",)
        assert spec.world.pop_capacity == (("LON", 1.0),)


class TestRejection:
    def test_unknown_scenario_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field.*not_a_knob"):
            ScenarioSpec.from_dict({"name": "x", "not_a_knob": 1})

    def test_unknown_world_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field.*popz"):
            WorldSpec.from_dict({"popz": ["SIN"]})

    def test_error_lists_accepted_fields(self):
        with pytest.raises(ValueError, match="accepted.*steering_policy"):
            ScenarioSpec.from_dict({"name": "x", "bogus": 1})

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError, match="'name'"):
            ScenarioSpec.from_dict({"seed": 1})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError, match="object"):
            ScenarioSpec.from_dict(["baseline"])

    @pytest.mark.parametrize(
        "field, value, accepted",
        [
            ("arrival_profile", "bursty", "flash_crowd"),
            ("last_mile", "leo_satellite", "geo_satellite"),
            ("steering_policy", "always_internet", "always_vns"),
        ],
    )
    def test_unknown_enum_values_rejected(self, field, value, accepted):
        with pytest.raises(ValueError, match=f"{value}|{accepted}"):
            ScenarioSpec(name="x", **{field: value})

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="huge"):
            WorldSpec(scale="huge")

    def test_unknown_pop_down_rejected(self):
        with pytest.raises(ValueError, match="XXX"):
            WorldSpec(pops_down=("XXX",))

    def test_unknown_capacity_pop_rejected(self):
        with pytest.raises(ValueError, match="XXX"):
            WorldSpec(pop_capacity=(("XXX", 1.0),))

    def test_duplicate_capacity_entry_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorldSpec(pop_capacity=(("LON", 1.0), ("LON", 2.0)))

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            WorldSpec(pop_capacity=(("LON", 0.0),))

    def test_malformed_capacity_pairs_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            WorldSpec.from_dict({"pop_capacity": [["LON", 1.0, 9]]})

    def test_bad_fault_entries_rejected(self):
        with pytest.raises(ValueError, match="fault"):
            ScenarioSpec(name="x", faults=("LinkDown",))

    def test_bad_fault_json_rejected(self):
        with pytest.raises(ValueError, match="array"):
            ScenarioSpec.from_dict({"name": "x", "faults": "LinkDown"})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "x", "n_users": 1},
            {"name": "x", "days": 0},
            {"name": "x", "calls_per_user_day": 0.0},
            {"name": "x", "multiparty_fraction": 1.5},
            {"name": "x", "flash_window_h": 0.0},
            {"name": "x", "satellite_delay_ms": -1.0},
            {"name": "x", "satellite_loss": 1.0},
        ],
    )
    def test_out_of_range_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioSpec(**kwargs)


class TestRegistry:
    def test_registry_covers_roadmap_classes(self):
        assert set(SCENARIOS) >= {
            "baseline",
            "geo_satellite",
            "flash_crowd",
            "regional_outage",
            "pop_exhaustion",
        }

    def test_builders_return_fresh_specs(self):
        assert canned_scenario("baseline") is not canned_scenario("baseline")

    def test_unknown_name_lists_registry(self):
        with pytest.raises(KeyError, match="baseline"):
            canned_scenario("no_such_scenario")
