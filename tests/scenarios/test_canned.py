"""Canned-scenario behaviour: each regime moves the report as designed.

Every test compares a scaled-down canned scenario against a baseline
with identical workload knobs on one shared world, asserting the
direction (and rough size) of the QoE delta the regime exists to
produce.
"""

import statistics
from dataclasses import replace

import pytest

from repro.scenarios import canned_scenario, load_scenario

#: Scaled-down knobs shared by scenario and baseline, per comparison.
SMALL = dict(n_users=40, calls_per_user_day=2.0)


@pytest.fixture(scope="module")
def reports(scenario_world):
    """Memoised scaled-down scenario reports on the module's world."""
    cache: dict[str, dict] = {}

    def run(name: str, **kw):
        key = f"{name}|{sorted(kw.items())}"
        if key not in cache:
            spec = replace(canned_scenario(name), **kw)
            loaded = load_scenario(spec, base_world=scenario_world)
            try:
                cache[key] = loaded.run().report.to_dict()
            finally:
                loaded.restore()
        return cache[key]

    return run


def p50s(report: dict, transport: str) -> dict[str, float]:
    return {
        pair: stats[transport]["delay_ms"]["p50"]
        for pair, stats in report["pairs"].items()
        if stats.get(transport)
    }


def mean_delta(a: dict[str, float], b: dict[str, float]) -> float:
    common = set(a) & set(b)
    assert common
    return statistics.mean(b[k] - a[k] for k in common)


class TestGeoSatellite:
    def test_satellite_adds_the_bounce_to_both_transports(self, reports):
        base = reports("baseline", **SMALL)
        sat = reports("geo_satellite", **SMALL)
        # One access leg per direction rides the ~270 ms GEO bounce, so
        # per-pair RTT-derived p50 grows by roughly twice that; assert a
        # conservative floor well past any terrestrial effect.
        assert mean_delta(p50s(base, "vns"), p50s(sat, "vns")) > 400.0
        assert mean_delta(p50s(base, "internet"), p50s(sat, "internet")) > 400.0

    def test_call_mix_is_unchanged(self, reports):
        base = reports("baseline", **SMALL)
        sat = reports("geo_satellite", **SMALL)
        assert sat["n_calls"] == base["n_calls"]
        assert sat["turn_allocations"] == base["turn_allocations"]


class TestFlashCrowd:
    def test_crowd_adds_calls_and_turn_relays(self, reports):
        base = reports("baseline", **SMALL)
        crowd = reports("flash_crowd", **SMALL)
        spec = canned_scenario("flash_crowd")
        assert crowd["n_calls"] == base["n_calls"] + spec.flash_attendees
        # Webinar legs are multiparty: TURN allocations surge.
        assert crowd["turn_allocations"] > base["turn_allocations"] * 2

    def test_demand_concentrates_on_host_corridors(self, reports):
        base = reports("baseline", **SMALL)
        crowd = reports("flash_crowd", **SMALL)
        busiest = lambda report: max(
            stats["calls"] for stats in report["pairs"].values()
        )
        assert busiest(crowd) > busiest(base) * 2


class TestRegionalOutage:
    def test_vns_detours_cost_delay_on_affected_corridors(self, reports):
        spec = canned_scenario("regional_outage")
        base = reports(
            "baseline", n_users=40, calls_per_user_day=spec.calls_per_user_day
        )
        outage = reports("regional_outage", n_users=40)
        assert outage["n_calls"] == base["n_calls"]
        pb, po = p50s(base, "vns"), p50s(outage, "vns")
        # Corridors touching Oceania / Asia-Pacific reroute around the
        # lost SIN PoP and the cut trans-Pacific circuit.
        affected = [
            k
            for k in set(pb) & set(po)
            if any(region in k for region in ("OC", "AP"))
        ]
        assert statistics.mean(po[k] - pb[k] for k in affected) > 10.0

    def test_vns_win_rate_drops_under_failover(self, reports):
        spec = canned_scenario("regional_outage")
        base = reports(
            "baseline", n_users=40, calls_per_user_day=spec.calls_per_user_day
        )
        outage = reports("regional_outage", n_users=40)
        rate = lambda report: statistics.mean(
            stats["vns_delay_win_rate"] for stats in report["pairs"].values()
        )
        assert rate(outage) < rate(base)


class TestPopExhaustion:
    def test_congestion_penalises_vns_but_not_internet(self, reports):
        base = reports("baseline", **SMALL)
        exhausted = reports("pop_exhaustion", **SMALL)
        assert mean_delta(p50s(base, "vns"), p50s(exhausted, "vns")) > 2.0
        # The Internet transport bypasses the PoPs: byte-identical QoE.
        pb, pe = p50s(base, "internet"), p50s(exhausted, "internet")
        assert pb == pe

    def test_vns_delay_wins_erode(self, reports):
        base = reports("baseline", **SMALL)
        exhausted = reports("pop_exhaustion", **SMALL)
        rate = lambda report: statistics.mean(
            stats["vns_delay_win_rate"] for stats in report["pairs"].values()
        )
        assert rate(exhausted) < rate(base)
