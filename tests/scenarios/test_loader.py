"""Loader tests: the path model, fault application, and world hygiene."""

import pickle

import pytest

from repro.dataplane.link import DegradedSegment, PathSegment, SegmentKind
from repro.dataplane.path import DataPath
from repro.faults.events import (
    LinkDown,
    LinkUp,
    PopDown,
    TransitDegrade,
    TransitRestore,
    events_from_json,
    events_to_json,
)
from repro.geo.coords import GeoPoint
from repro.net.asn import ASType
from repro.scenarios import (
    ScenarioPathModel,
    ScenarioSpec,
    WorldSpec,
    apply_scenario_faults,
    canned_scenario,
    compose_scenario,
    load_scenario,
    scenario_calls,
)

LON = GeoPoint(51.5, -0.12)
NYC = GeoPoint(40.7, -74.0)
EU_NA = ("Europe", "North and Central America")


def synthetic_path() -> DataPath:
    """ACCESS(EU) -> TRANSIT(EU->NA) -> ACCESS(NA)."""
    return DataPath(
        segments=[
            PathSegment(
                kind=SegmentKind.ACCESS, start=LON, end=LON, as_type=ASType.EC
            ),
            PathSegment(
                kind=SegmentKind.TRANSIT, start=LON, end=NYC, owner_type=ASType.LTP
            ),
            PathSegment(
                kind=SegmentKind.ACCESS, start=NYC, end=NYC, as_type=ASType.EC
            ),
        ],
        description="synthetic EU->NA",
    )


class TestScenarioPathModel:
    def test_satellite_rehomes_only_the_first_access_segment(self):
        model = ScenarioPathModel(
            last_mile="geo_satellite", satellite_delay_ms=270.0, satellite_loss=0.012
        )
        path = synthetic_path()
        out = model.transform(path, "internet", entry_pop="LON")
        assert isinstance(out.segments[0], DegradedSegment)
        assert out.segments[0].extra_delay_ms == pytest.approx(270.0)
        assert out.segments[0].extra_loss == pytest.approx(0.012)
        # The transit leg and the far-end access leg stay terrestrial.
        assert not isinstance(out.segments[1], DegradedSegment)
        assert not isinstance(out.segments[2], DegradedSegment)
        assert out.one_way_delay_ms() == pytest.approx(
            path.one_way_delay_ms() + 270.0
        )

    def test_degradation_hits_matching_transit_corridor(self):
        model = ScenarioPathModel(
            degradations=(
                TransitDegrade(
                    time_s=0.0, regions=EU_NA, extra_loss=0.05, extra_delay_ms=40.0
                ),
            )
        )
        out = model.transform(synthetic_path(), "internet", entry_pop="LON")
        assert isinstance(out.segments[1], DegradedSegment)
        assert out.segments[1].extra_delay_ms == pytest.approx(40.0)
        assert not isinstance(out.segments[0], DegradedSegment)

    def test_degradation_ignores_other_corridors(self):
        model = ScenarioPathModel(
            degradations=(
                TransitDegrade(time_s=0.0, regions=("Europe", "Africa")),
            )
        )
        path = synthetic_path()
        assert model.transform(path, "internet", entry_pop="LON") is path

    def test_pop_overload_hits_vns_and_detour_but_not_internet(self):
        model = ScenarioPathModel(pop_overload=(("LON", 1.0),))
        path = synthetic_path()
        for transport in ("vns", "detour"):
            out = model.transform(path, transport, entry_pop="LON")
            assert isinstance(out.segments[0], DegradedSegment), transport
            assert out.segments[0].extra_delay_ms > 0.0
        assert model.transform(path, "internet", entry_pop="LON") is path
        # A different (uncongested) entry PoP is untouched.
        assert model.transform(path, "vns", entry_pop="ASH") is path

    def test_overload_units_are_clamped(self):
        mild = ScenarioPathModel(pop_overload=(("LON", 4.0),))
        wild = ScenarioPathModel(pop_overload=(("LON", 400.0),))
        path = synthetic_path()
        assert (
            mild.transform(path, "vns", entry_pop="LON").segments[0].extra_delay_ms
            == wild.transform(path, "vns", entry_pop="LON").segments[0].extra_delay_ms
        )

    def test_noop_model_returns_the_same_object(self):
        model = ScenarioPathModel()
        assert model.is_noop
        path = synthetic_path()
        assert model.transform(path, "vns", entry_pop="LON") is path

    def test_model_pickles_and_transforms_identically(self):
        model = ScenarioPathModel(
            last_mile="geo_satellite",
            satellite_delay_ms=270.0,
            satellite_loss=0.012,
            degradations=(TransitDegrade(time_s=0.0, regions=EU_NA),),
            pop_overload=(("LON", 0.5),),
        )
        clone = pickle.loads(pickle.dumps(model))
        assert clone == model
        assert clone.fingerprint() == model.fingerprint()
        a = model.transform(synthetic_path(), "vns", entry_pop="LON")
        b = clone.transform(synthetic_path(), "vns", entry_pop="LON")
        assert a.segments == b.segments

    def test_fingerprint_distinguishes_models(self):
        prints = {
            ScenarioPathModel().fingerprint(),
            ScenarioPathModel(last_mile="geo_satellite").fingerprint(),
            ScenarioPathModel(pop_overload=(("LON", 0.5),)).fingerprint(),
            ScenarioPathModel(
                degradations=(TransitDegrade(time_s=0.0, regions=EU_NA),)
            ).fingerprint(),
        }
        assert len(prints) == 4


class TestFaultApplication:
    def test_pops_down_become_active_faults(self, scenario_world):
        spec = ScenarioSpec(name="x", world=WorldSpec(pops_down=("SYD",)))
        applied = apply_scenario_faults(scenario_world.service, spec)
        try:
            assert [type(e).__name__ for e in applied.active] == ["PopDown"]
        finally:
            applied.restore()

    def test_matched_up_events_clear_the_active_list(self, scenario_world):
        spec = ScenarioSpec(
            name="x",
            faults=(
                LinkDown(time_s=0.0, a="LON", b="ASH"),
                LinkUp(time_s=30.0, a="ASH", b="LON"),
            ),
        )
        applied = apply_scenario_faults(scenario_world.service, spec)
        try:
            assert applied.active == []
        finally:
            applied.restore()

    def test_transit_events_stay_out_of_the_control_plane(self, scenario_world):
        spec = ScenarioSpec(
            name="x",
            faults=(
                TransitDegrade(time_s=0.0, regions=EU_NA),
                TransitDegrade(time_s=1.0, regions=("Europe", "Africa")),
                TransitRestore(time_s=2.0, regions=("Europe", "Africa")),
            ),
        )
        applied = apply_scenario_faults(scenario_world.service, spec)
        try:
            assert applied.active == []
            assert [d.regions for d in applied.degradations] == [EU_NA]
        finally:
            applied.restore()

    def test_restore_is_idempotent(self, scenario_world):
        spec = ScenarioSpec(name="x", faults=(PopDown(time_s=0.0, pop="SIN"),))
        applied = apply_scenario_faults(scenario_world.service, spec)
        applied.restore()
        applied.restore()

    def test_load_run_restore_leaves_reports_byte_identical(self, scenario_world):
        """The world-hygiene contract, functionally.

        A baseline campaign must produce byte-identical reports before
        and after a faulted scenario ran on the same world.
        """
        probe = ScenarioSpec(name="probe", n_users=20, calls_per_user_day=1.0)

        def probe_report() -> str:
            loaded = load_scenario(probe, base_world=scenario_world)
            try:
                return loaded.run().report.to_json()
            finally:
                loaded.restore()

        before = probe_report()
        outage = ScenarioSpec(
            name="outage",
            n_users=20,
            calls_per_user_day=1.0,
            faults=(
                PopDown(time_s=0.0, pop="SIN"),
                LinkDown(time_s=1.0, a="SJS", b="HK"),
            ),
        )
        loaded = load_scenario(outage, base_world=scenario_world)
        try:
            loaded.run()
        finally:
            loaded.restore()
        assert probe_report() == before

    def test_round_tripped_faults_run_identically(self, scenario_world):
        faults = (
            PopDown(time_s=0.0, pop="SIN"),
            LinkDown(time_s=1.0, a="SJS", b="HK"),
        )
        restored = events_from_json(events_to_json(faults))
        a = ScenarioSpec(name="a", n_users=20, calls_per_user_day=1.0, faults=faults)
        b = ScenarioSpec(name="b", n_users=20, calls_per_user_day=1.0, faults=restored)
        reports = []
        for spec in (a, b):
            loaded = load_scenario(spec, base_world=scenario_world)
            try:
                reports.append(loaded.run().report.to_json())
            finally:
                loaded.restore()
        assert reports[0] == reports[1]

    def test_mismatched_base_world_scale_rejected(self, scenario_world):
        spec = ScenarioSpec(name="x", world=WorldSpec(scale="medium"))
        with pytest.raises(ValueError, match="medium.*small|small.*medium"):
            load_scenario(spec, base_world=scenario_world)


class TestComposition:
    def test_flash_crowd_overlays_the_diurnal_background(self, scenario_world):
        diurnal = ScenarioSpec(name="d", n_users=30, calls_per_user_day=1.5)
        crowd = ScenarioSpec(
            name="c",
            n_users=30,
            calls_per_user_day=1.5,
            arrival_profile="flash_crowd",
            flash_attendees=80,
        )
        base = scenario_calls(diurnal, scenario_world)
        overlaid = scenario_calls(crowd, scenario_world)
        assert len(overlaid) == len(base) + 80
        ids = [call.call_id for call in overlaid]
        assert len(set(ids)) == len(ids)
        keys = [(call.day, call.start_hour_cet) for call in overlaid]
        assert keys == sorted(keys)

    def test_uncongested_capacity_gives_no_path_model(self, scenario_world):
        spec = ScenarioSpec(
            name="x",
            n_users=20,
            calls_per_user_day=1.0,
            world=WorldSpec(pop_capacity=(("*", 1e9),)),
        )
        loaded = compose_scenario(spec, scenario_world)
        assert loaded.path_model is None

    def test_exhausted_capacity_congests_entry_pops(self, scenario_world):
        spec = canned_scenario("pop_exhaustion")
        loaded = compose_scenario(spec, scenario_world)
        assert loaded.path_model is not None
        assert loaded.path_model.pop_overload
        assert all(units > 0 for _, units in loaded.path_model.pop_overload)

    def test_steering_policy_by_name(self, scenario_world):
        spec = ScenarioSpec(
            name="x",
            n_users=20,
            calls_per_user_day=1.0,
            steering_policy="always_vns",
        )
        loaded = compose_scenario(spec, scenario_world)
        assert loaded.steering is not None
        run = loaded.run()
        assert run.report.steering is not None
