"""Golden differ and store unit tests (no world needed)."""

import pytest

from repro.scenarios import GoldenStore, diff_reports
from repro.scenarios.golden import REGEN_ENV


class TestDiffReports:
    def test_identical_reports_are_ok(self):
        report = {"a": 1, "b": [1.0, "x"], "c": {"d": True}}
        assert diff_reports(report, dict(report)).ok

    def test_float_within_tolerance_passes(self):
        assert diff_reports({"v": 100.0}, {"v": 104.9}, rtol=0.05).ok

    def test_float_outside_tolerance_fails_with_path(self):
        diff = diff_reports({"p": {"v": 100.0}}, {"p": {"v": 106.0}}, rtol=0.05)
        assert not diff.ok
        assert "p.v" in diff.mismatches[0]
        assert "100.0" in diff.mismatches[0]

    def test_negative_floats_use_absolute_tolerance_base(self):
        assert diff_reports({"v": -100.0}, {"v": -104.0}, rtol=0.05).ok
        assert not diff_reports({"v": -100.0}, {"v": -106.0}, rtol=0.05).ok

    def test_int_counts_must_match_exactly(self):
        assert not diff_reports({"n": 100}, {"n": 101}).ok

    def test_golden_float_accepts_int_actual(self):
        assert diff_reports({"v": 1.0}, {"v": 1}).ok

    def test_bools_are_not_numbers(self):
        assert not diff_reports({"v": True}, {"v": 1}).ok
        assert not diff_reports({"v": 1.0}, {"v": True}).ok

    def test_missing_key_reported(self):
        diff = diff_reports({"a": 1, "b": 2}, {"a": 1})
        assert ["b: missing from report"] == diff.mismatches

    def test_unexpected_key_reported(self):
        diff = diff_reports({"a": 1}, {"a": 1, "z": 2})
        assert "z: unexpected key" in diff.mismatches[0]

    def test_list_length_change_reported(self):
        diff = diff_reports({"xs": [1, 2]}, {"xs": [1]})
        assert "length changed from 2 to 1" in diff.mismatches[0]

    def test_list_elements_recurse_with_index(self):
        diff = diff_reports({"xs": [{"v": 1}]}, {"xs": [{"v": 2}]})
        assert "xs[0].v" in diff.mismatches[0]

    def test_type_change_reported(self):
        diff = diff_reports({"v": "1"}, {"v": 1})
        assert "type changed" in diff.mismatches[0]

    def test_string_mismatch_reported(self):
        assert not diff_reports({"v": "vns"}, {"v": "internet"}).ok


class TestGoldenStore:
    def test_save_load_round_trip(self, tmp_path):
        store = GoldenStore(tmp_path)
        store.save("cell", {"a": 1.5})
        assert store.load("cell") == {"a": 1.5}
        assert store.keys() == ("cell",)

    def test_missing_golden_flagged(self, tmp_path):
        diff = GoldenStore(tmp_path).check("nope", {"a": 1})
        assert diff.missing and not diff.ok
        assert "no golden" in diff.render()

    def test_update_writes_and_reports_clean(self, tmp_path):
        store = GoldenStore(tmp_path)
        assert store.check("cell", {"a": 1}, update=True).ok
        assert store.load("cell") == {"a": 1}

    def test_check_against_committed_golden(self, tmp_path):
        store = GoldenStore(tmp_path)
        store.save("cell", {"a": 1.0})
        assert store.check("cell", {"a": 1.001}).ok
        assert not store.check("cell", {"a": 2.0}).ok

    def test_regen_env_rewrites(self, tmp_path, monkeypatch):
        store = GoldenStore(tmp_path)
        store.save("cell", {"a": 1.0})
        monkeypatch.setenv(REGEN_ENV, "1")
        assert store.check("cell", {"a": 999.0}).ok
        assert store.load("cell") == {"a": 999.0}

    def test_regen_env_zero_still_compares(self, tmp_path, monkeypatch):
        store = GoldenStore(tmp_path)
        store.save("cell", {"a": 1.0})
        monkeypatch.setenv(REGEN_ENV, "0")
        assert not store.check("cell", {"a": 999.0}).ok

    def test_saved_files_are_byte_stable(self, tmp_path):
        store = GoldenStore(tmp_path)
        payload = {"b": 2, "a": [1.25, {"z": 1, "y": 2}]}
        store.save("cell", payload)
        first = store.path("cell").read_bytes()
        store.save("cell", store.load("cell"))
        assert store.path("cell").read_bytes() == first
