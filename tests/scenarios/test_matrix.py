"""Matrix runner tests: grid expansion, determinism, golden wiring."""

import json
from dataclasses import replace

import pytest

from repro.scenarios import GoldenStore, canned_scenario, run_matrix
from repro.scenarios.matrix import _fault_signature


def small(name: str, **kw):
    """A canned spec scaled down for test runtime."""
    return replace(
        canned_scenario(name), n_users=24, calls_per_user_day=1.5, **kw
    )


class TestGrid:
    def test_cells_come_back_in_expansion_order(self):
        result = run_matrix(
            [small("baseline"), small("geo_satellite")],
            seeds=(0, 1),
            sharded=False,
        )
        assert [cell.key for cell in result.cells] == [
            "baseline-small-seed0",
            "baseline-small-seed1",
            "geo_satellite-small-seed0",
            "geo_satellite-small-seed1",
        ]

    def test_string_scenarios_resolve_via_registry(self):
        with pytest.raises(KeyError, match="known"):
            run_matrix(["no_such_scenario"])

    def test_cell_lookup_by_key(self):
        result = run_matrix([small("baseline")], sharded=False)
        assert result.cell("baseline-small-seed0").scenario == "baseline"
        with pytest.raises(KeyError):
            result.cell("nope")

    def test_unfaulted_scenarios_share_a_fault_signature(self):
        assert _fault_signature(small("baseline")) == _fault_signature(
            small("geo_satellite")
        )
        assert _fault_signature(small("baseline")) == _fault_signature(
            small("pop_exhaustion")
        )
        assert _fault_signature(small("baseline")) != _fault_signature(
            small("regional_outage")
        )

    def test_summary_counts_cells_and_goldens(self, tmp_path):
        result = run_matrix(
            [small("baseline")],
            seeds=(0, 1),
            sharded=False,
            golden=tmp_path,
            update_golden=True,
        )
        summary = result.summary()
        assert summary["golden_checked"] == 2
        assert summary["golden_failed"] == 0
        assert len(summary["cells"]) == 2
        json.loads(result.to_json())
        assert "baseline-small-seed0" in result.render()


class TestDeterminism:
    def test_sharded_cells_match_sequential_byte_for_byte(self):
        """The acceptance criterion: pool-sharded == sequential, per cell.

        Two unfaulted scenarios and a faulted one, so both the shared
        pool and the dedicated per-group pool paths are exercised
        against their sequential reruns.
        """
        grid = [
            small("baseline"),
            small("pop_exhaustion"),
            small("regional_outage"),
        ]
        sharded = run_matrix(grid, seeds=(0,), workers=2, sharded=True)
        sequential = run_matrix(grid, seeds=(0,), sharded=False)
        assert [c.key for c in sharded.cells] == [c.key for c in sequential.cells]
        assert sharded.sharded and not sequential.sharded
        for a, b in zip(sharded.cells, sequential.cells):
            assert json.dumps(a.report, sort_keys=True) == json.dumps(
                b.report, sort_keys=True
            ), a.key

    def test_repeat_run_is_byte_identical(self):
        grid = [small("geo_satellite")]
        first = run_matrix(grid, sharded=False)
        second = run_matrix(grid, sharded=False)
        assert json.dumps(first.cells[0].report, sort_keys=True) == json.dumps(
            second.cells[0].report, sort_keys=True
        )


class TestGoldenRegression:
    def test_injected_perturbation_is_caught_with_a_path(self, tmp_path):
        grid = [small("baseline")]
        store = GoldenStore(tmp_path)
        assert run_matrix(grid, sharded=False, golden=store, update_golden=True).ok
        # A clean re-run passes against the committed goldens.
        assert run_matrix(grid, sharded=False, golden=store).ok
        # Perturb one QoE float by 50% — far past rtol.
        key = "baseline-small-seed0"
        golden = store.load(key)
        pair = next(iter(golden["pairs"]))
        golden["pairs"][pair]["internet"]["delay_ms"]["p50"] *= 1.5
        store.save(key, golden)
        result = run_matrix(grid, sharded=False, golden=store)
        assert not result.ok
        (bad,) = result.regressions()
        assert bad.key == key
        (mismatch,) = bad.golden.mismatches
        assert f"pairs.{pair}.internet.delay_ms.p50" in mismatch

    def test_missing_golden_is_a_regression(self, tmp_path):
        result = run_matrix(
            [small("baseline")], sharded=False, golden=GoldenStore(tmp_path)
        )
        assert not result.ok
        assert result.regressions()[0].golden.missing

    def test_structural_drift_is_caught(self, tmp_path):
        store = GoldenStore(tmp_path)
        grid = [small("baseline")]
        run_matrix(grid, sharded=False, golden=store, update_golden=True)
        key = "baseline-small-seed0"
        golden = store.load(key)
        golden["pairs"]["XX->XX"] = {"calls": 1}
        store.save(key, golden)
        result = run_matrix(grid, sharded=False, golden=store)
        assert "missing from report" in result.cells[0].golden.mismatches[0]
