"""Unit tests for SPF (Dijkstra)."""

import pytest

from repro.igp.graph import IgpGraph
from repro.igp.spf import all_pairs_spf, spf


@pytest.fixture
def square() -> IgpGraph:
    """a-b-d and a-c-d, with the a-c-d side cheaper; plus a-d direct but
    expensive."""
    g = IgpGraph()
    g.add_link("a", "b", 2.0)
    g.add_link("b", "d", 2.0)
    g.add_link("a", "c", 1.0)
    g.add_link("c", "d", 1.0)
    g.add_link("a", "d", 10.0)
    return g


class TestSpf:
    def test_source_distance_zero(self, square):
        result = spf(square, "a")
        assert result.metric_to("a") == 0.0

    def test_shortest_distance(self, square):
        result = spf(square, "a")
        assert result.metric_to("d") == 2.0

    def test_path_reconstruction(self, square):
        result = spf(square, "a")
        assert result.path_to("d") == ["a", "c", "d"]

    def test_unreachable(self, square):
        square.add_node("island")
        result = spf(square, "a")
        assert result.metric_to("island") == float("inf")
        assert result.path_to("island") is None
        assert not result.reachable("island")

    def test_unknown_source_raises(self, square):
        with pytest.raises(KeyError):
            spf(square, "nowhere")

    def test_deterministic_tiebreak(self):
        g = IgpGraph()
        g.add_link("s", "x", 1.0)
        g.add_link("s", "y", 1.0)
        g.add_link("x", "t", 1.0)
        g.add_link("y", "t", 1.0)
        # Two equal paths; tie broken by node id => via "x".
        assert spf(g, "s").path_to("t") == ["s", "x", "t"]

    def test_all_pairs(self, square):
        results = all_pairs_spf(square)
        assert set(results) == {"a", "b", "c", "d"}
        assert results["d"].metric_to("a") == results["a"].metric_to("d")

    def test_triangle_inequality(self, square):
        results = all_pairs_spf(square)
        nodes = square.nodes()
        for x in nodes:
            for y in nodes:
                for z in nodes:
                    assert results[x].metric_to(y) <= (
                        results[x].metric_to(z) + results[z].metric_to(y) + 1e-9
                    )
