"""Unit tests for the IGP graph."""

import pytest

from repro.igp.graph import IgpGraph, IgpLink


class TestIgpLink:
    def test_validation(self):
        with pytest.raises(ValueError):
            IgpLink(a="x", b="x", metric=1.0)
        with pytest.raises(ValueError):
            IgpLink(a="x", b="y", metric=0.0)

    def test_other(self):
        link = IgpLink(a="x", b="y", metric=1.0)
        assert link.other("x") == "y"
        assert link.other("y") == "x"
        with pytest.raises(ValueError):
            link.other("z")


class TestIgpGraph:
    def test_add_and_query(self):
        g = IgpGraph()
        g.add_link("a", "b", 5.0)
        assert g.metric("a", "b") == 5.0
        assert g.metric("b", "a") == 5.0
        assert g.neighbors("a") == {"b": 5.0}

    def test_duplicate_link_rejected(self):
        g = IgpGraph()
        g.add_link("a", "b", 5.0)
        with pytest.raises(ValueError):
            g.add_link("b", "a", 7.0)

    def test_self_loop_rejected(self):
        g = IgpGraph()
        with pytest.raises(ValueError):
            g.add_link("a", "a", 1.0)

    def test_unknown_node_raises(self):
        g = IgpGraph()
        with pytest.raises(KeyError):
            g.neighbors("nowhere")

    def test_connectivity(self):
        g = IgpGraph()
        assert g.is_connected()  # empty graph is trivially connected
        g.add_link("a", "b", 1.0)
        assert g.is_connected()
        g.add_node("island")
        assert not g.is_connected()

    def test_num_links(self):
        g = IgpGraph()
        g.add_link("a", "b", 1.0)
        g.add_link("b", "c", 1.0)
        assert g.num_links() == 2
