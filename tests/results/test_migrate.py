"""Migration of the four committed ``BENCH_*.json`` baselines."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.results import (
    CI_GATES,
    find_legacy_snapshots,
    legacy_bench_name,
    migrate_bench_json,
    migrate_repo,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED = ("scale", "scenario_matrix", "steering", "workload")


class TestNames:
    def test_legacy_bench_name(self):
        assert legacy_bench_name("BENCH_workload.json") == "workload"
        assert legacy_bench_name(Path("/x/BENCH_scenario_matrix.json")) == (
            "scenario_matrix"
        )

    @pytest.mark.parametrize("bad", ["workload.json", "BENCH_x.txt", "x"])
    def test_rejects_other_names(self, bad):
        with pytest.raises(ValueError):
            legacy_bench_name(bad)

    def test_finds_the_committed_four(self):
        names = tuple(
            legacy_bench_name(path) for path in find_legacy_snapshots(REPO_ROOT)
        )
        assert names == COMMITTED


class TestMigrateCommittedBaselines:
    def test_all_four_become_queryable_runs(self, store):
        migrated = migrate_repo(
            store, REPO_ROOT, rev="seed", recorded_at="2026-01-01T00:00:00Z"
        )
        assert tuple(sorted(migrated)) == COMMITTED
        for bench, run_id in migrated.items():
            row = store.latest(bench)
            assert row is not None and row.id == run_id
            assert row.git_rev == "seed"
            assert store.metrics(run_id), bench

    def test_seed_comes_from_the_payload(self, store):
        run_id = migrate_bench_json(
            store,
            REPO_ROOT / "BENCH_workload.json",
            rev="seed",
            recorded_at="2026-01-01T00:00:00Z",
        )
        assert store.run(run_id).key.seed == 7

    def test_gated_metrics_exist_in_migrated_rows(self, store):
        """Every CI gate resolves against the committed baselines."""
        migrated = migrate_repo(
            store, REPO_ROOT, rev="seed", recorded_at="2026-01-01T00:00:00Z"
        )
        for bench, gates in CI_GATES.items():
            metrics = store.metrics(migrated[bench])
            for gate in gates:
                assert gate.name in metrics, f"{bench}: {gate.name}"

    def test_payload_round_trips_the_file(self, store):
        path = REPO_ROOT / "BENCH_scale.json"
        run_id = migrate_bench_json(
            store, path, rev="seed", recorded_at="2026-01-01T00:00:00Z"
        )
        assert store.run(run_id).payload == json.loads(
            path.read_text(encoding="utf-8")
        )

    def test_non_object_snapshot_rejected(self, store, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("[1, 2]\n", encoding="utf-8")
        with pytest.raises(ValueError):
            migrate_bench_json(store, bad)


class TestCommittedHistoryFile:
    """The committed JSONL history matches the committed baselines."""

    HISTORY = REPO_ROOT / "benchmarks" / "results" / "history.jsonl"

    def test_history_carries_all_four_benches(self, store):
        run_ids = store.import_jsonl(self.HISTORY)
        assert tuple(sorted(store.benches())) == COMMITTED
        assert len(run_ids) == len(COMMITTED)

    def test_history_payloads_match_committed_snapshots(self, store):
        store.import_jsonl(self.HISTORY)
        for bench in COMMITTED:
            committed = json.loads(
                (REPO_ROOT / f"BENCH_{bench}.json").read_text(encoding="utf-8")
            )
            assert store.latest(bench).payload == committed, bench
