"""Region-pair QoE heatmap export: text grid, CSV, store round-trip."""

from __future__ import annotations

from repro.results import (
    RunKey,
    heatmap_from_pairs,
    heatmap_from_report,
    heatmap_from_store,
)

PAIRS = {
    "AS->EU": {"calls": 4, "vns": {"delay_ms": {"p50": 95.25}}},
    "EU->AS": {"calls": 3, "vns": {"delay_ms": {"p50": 90.0}}},
    "EU->EU": {"calls": 9, "vns": {"delay_ms": {"p50": 18.5}}},
}


class TestGrid:
    def test_values_and_axes(self):
        grid = heatmap_from_pairs(PAIRS, metric="delay_ms.p50", transport="vns")
        assert grid.srcs == ("AS", "EU")
        assert grid.dsts == ("AS", "EU")
        assert grid.value("EU", "EU") == 18.5
        assert grid.value("AS", "AS") is None  # sparse corridor

    def test_pair_level_metric_uses_empty_transport(self):
        grid = heatmap_from_pairs(PAIRS, metric="calls", transport="")
        assert grid.value("EU", "AS") == 3.0

    def test_render_text_grid(self):
        grid = heatmap_from_pairs(PAIRS, metric="delay_ms.p50", transport="vns")
        text = grid.render()
        lines = text.splitlines()
        assert "delay_ms.p50 (vns)" in lines[0]
        assert lines[1].split() == ["src", "AS", "EU"]
        assert lines[2].split() == ["AS", "-", "95.25"]
        assert lines[3].split() == ["EU", "90.00", "18.50"]

    def test_csv_has_empty_cells_for_missing_corridors(self):
        grid = heatmap_from_pairs(PAIRS, metric="delay_ms.p50", transport="vns")
        csv = grid.to_csv(digits=2)
        assert csv.splitlines() == [
            "src,AS,EU",
            "AS,,95.25",
            "EU,90.00,18.50",
        ]

    def test_from_report_dict(self):
        grid = heatmap_from_report({"pairs": PAIRS}, metric="delay_ms.p50")
        assert grid.value("AS", "EU") == 95.25


class TestStoreRoundTrip:
    def test_store_grid_matches_pairs_grid(self, store):
        run_id = store.record_run(
            RunKey(bench="demo", git_rev="a", recorded_at="2026-01-01T00:00:00Z"),
            {"seed": 0},
            reports={"": {"pairs": PAIRS}},
        )
        direct = heatmap_from_pairs(PAIRS, metric="delay_ms.p50", transport="vns")
        stored = heatmap_from_store(
            store, run_id, metric="delay_ms.p50", transport="vns"
        )
        assert stored.values == direct.values
        assert stored.render() == direct.render()
        assert stored.to_csv() == direct.to_csv()
