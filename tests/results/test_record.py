"""The unified ``record()`` write path: legacy bytes + store rows."""

from __future__ import annotations

import json
from pathlib import Path

from repro.results import (
    GIT_REV_ENV,
    STORE_ENV,
    ResultsStore,
    default_store_path,
    record,
    record_experiment,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestLegacySnapshotBytes:
    def test_committed_snapshot_is_byte_stable(self, tmp_path):
        """record() re-emits BENCH_workload.json exactly as committed."""
        committed = REPO_ROOT / "BENCH_workload.json"
        original = committed.read_text(encoding="utf-8")
        out = tmp_path / "BENCH_workload.json"
        record(
            "workload",
            json.loads(original),
            json_path=out,
            store=tmp_path / "store.sqlite",
            seed=7,
        )
        assert out.read_text(encoding="utf-8") == original

    def test_snapshot_shape(self, tmp_path):
        out = tmp_path / "BENCH_demo.json"
        record("demo", {"b": 2, "a": 1}, json_path=out,
               store=tmp_path / "s.sqlite",
               rev="abc", recorded_at="2026-01-01T00:00:00Z")
        assert out.read_text(encoding="utf-8") == (
            '{\n  "a": 1,\n  "b": 2\n}\n'
        )


class TestStoreRouting:
    def test_explicit_store_path(self, tmp_path):
        path = tmp_path / "results.sqlite"
        recorded = record(
            "demo",
            {"calls": 3},
            store=path,
            scale="small",
            seed=7,
            rev="abc1234",
            recorded_at="2026-01-01T00:00:00Z",
        )
        assert recorded.run_id is not None
        assert recorded.store_path == path
        with ResultsStore(path) as store:
            row = store.latest("demo")
            assert row.id == recorded.run_id
            assert row.key.scale == "small"
            assert row.key.seed == 7
            assert store.metrics(row.id)["calls"] == 3

    def test_open_store_instance(self, store):
        recorded = record(
            "demo", {"calls": 1}, store=store,
            rev="abc", recorded_at="2026-01-01T00:00:00Z",
        )
        assert recorded.run_id is not None
        assert recorded.store_path is None  # :memory: has no file
        assert store.latest("demo").id == recorded.run_id

    def test_env_disable_skips_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV, "off")
        assert default_store_path() is None
        recorded = record(
            "demo", {"calls": 1}, json_path=tmp_path / "BENCH_demo.json",
            rev="abc", recorded_at="2026-01-01T00:00:00Z",
        )
        assert recorded.run_id is None
        assert recorded.store_path is None
        assert recorded.json_path is not None and recorded.json_path.exists()

    def test_env_redirect(self, monkeypatch, tmp_path):
        target = tmp_path / "redirected.sqlite"
        monkeypatch.setenv(STORE_ENV, str(target))
        assert default_store_path() == target
        record("demo", {"calls": 1}, rev="abc",
               recorded_at="2026-01-01T00:00:00Z")
        with ResultsStore(target) as store:
            assert store.latest("demo") is not None

    def test_git_rev_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(GIT_REV_ENV, "ci_head")
        recorded = record(
            "demo", {"calls": 1}, store=tmp_path / "s.sqlite",
            recorded_at="2026-01-01T00:00:00Z",
        )
        assert recorded.key.git_rev == "ci_head"


class _StubResult:
    """A minimal uniform-API experiment result."""

    def render(self) -> str:
        return "stub"

    def to_row(self) -> dict:
        return {"calls": 5, "rate": 0.5}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(
            {"report": {"pairs": {"EU->NA": {"calls": 5}}}},
            indent=indent,
            sort_keys=True,
        )


class TestRecordExperiment:
    def test_payload_merges_row_and_ingests_pairs(self, store):
        recorded = record_experiment(
            "demo", _StubResult(), store=store,
            rev="abc", recorded_at="2026-01-01T00:00:00Z",
        )
        row = store.run(recorded.run_id)
        assert row.payload["row"] == {"calls": 5, "rate": 0.5}
        metrics = store.metrics(recorded.run_id)
        assert metrics["row.calls"] == 5
        pairs = store.pair_metrics(recorded.run_id, metric="calls")
        assert [(src, dst) for (_, src, dst, _, _, _) in pairs] == [("EU", "NA")]
