"""The ``python -m repro.results`` CLI: exit codes and output shapes."""

from __future__ import annotations

import json
from pathlib import Path

from repro.results import ResultsStore, RunKey, record
from repro.results.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def record_rate(path, value, rev, stamp, extra=None):
    payload = {"scales": {"small": {"campaign": {"calls": value}}}}
    if extra:
        payload.update(extra)
    record(
        "workload", payload, store=path, rev=rev, recorded_at=stamp, seed=7
    )


class TestCheck:
    def test_clean_history_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "s.sqlite"
        record_rate(path, 100, "rev0", "2026-01-01T00:00:00Z")
        record_rate(path, 100, "rev1", "2026-01-02T00:00:00Z")
        assert main(["check", "--store", str(path)]) == 0
        out = capsys.readouterr().out
        assert "workload" in out and "ok" in out

    def test_gated_regression_exits_two(self, tmp_path, capsys):
        path = tmp_path / "s.sqlite"
        record_rate(path, 100, "rev0", "2026-01-01T00:00:00Z")
        record_rate(path, 90, "rev1", "2026-01-02T00:00:00Z")
        # scales.small.campaign.calls is int-gated: exact compare fails.
        assert main(["check", "--store", str(path)]) == 2
        assert "mismatch" in capsys.readouterr().out

    def test_metric_override_with_direction_and_rtol(self, tmp_path):
        path = tmp_path / "s.sqlite"
        for rev, stamp, value in (
            ("rev0", "2026-01-01T00:00:00Z", 100.0),
            ("rev1", "2026-01-02T00:00:00Z", 94.0),
        ):
            record("demo", {"rate": value}, store=path, rev=rev,
                   recorded_at=stamp)
        args = ["check", "--store", str(path), "--bench", "demo"]
        assert main([*args, "--metric", "+rate:0.1"]) == 0  # 6% drop < 10%
        assert main([*args, "--metric", "+rate:0.05"]) == 2

    def test_empty_store_is_clean(self, tmp_path, capsys):
        path = tmp_path / "s.sqlite"
        ResultsStore(path).close()
        assert main(["check", "--store", str(path)]) == 0
        assert "no benches" in capsys.readouterr().out


class TestReadingCommands:
    def seed(self, path):
        record_rate(path, 100, "rev0", "2026-01-01T00:00:00Z")
        record_rate(path, 100, "rev1", "2026-01-02T00:00:00Z")

    def test_list(self, tmp_path, capsys):
        path = tmp_path / "s.sqlite"
        self.seed(path)
        assert main(["list", "--store", str(path)]) == 0
        out = capsys.readouterr().out
        assert "workload" in out and "rev0" in out and "rev1" in out

    def test_trajectory(self, tmp_path, capsys):
        path = tmp_path / "s.sqlite"
        self.seed(path)
        assert main(
            ["trajectory", "--store", str(path), "--bench", "workload",
             "--metric", "scales.small.campaign.calls"]
        ) == 0
        out = capsys.readouterr().out
        assert "scales.small.campaign.calls" in out
        assert "rev0" in out and "rev1" in out

    def test_heatmap_csv(self, tmp_path, capsys):
        path = tmp_path / "s.sqlite"
        pairs = {"EU->NA": {"vns": {"delay_ms": {"p50": 80.0}}}}
        with ResultsStore(path) as store:
            store.record_run(
                RunKey(bench="workload", git_rev="rev0",
                       recorded_at="2026-01-01T00:00:00Z"),
                {"seed": 7},
                reports={"": {"pairs": pairs}},
            )
        assert main(
            ["heatmap", "--store", str(path), "--bench", "workload", "--csv"]
        ) == 0
        assert capsys.readouterr().out.splitlines()[0] == "src,NA"


class TestHistoryCommands:
    def test_export_import_round_trip(self, tmp_path, capsys):
        src = tmp_path / "src.sqlite"
        self_seed = TestReadingCommands()
        self_seed.seed(src)
        history = tmp_path / "history.jsonl"
        assert main(["export", "--store", str(src), "--out", str(history)]) == 0
        capsys.readouterr()
        dst = tmp_path / "dst.sqlite"
        assert main(["import", "--store", str(dst), str(history)]) == 0
        assert "imported 2 run(s)" in capsys.readouterr().out
        with ResultsStore(dst) as store:
            assert len(store.runs("workload")) == 2

    def test_migrate_committed_snapshots(self, tmp_path, capsys):
        path = tmp_path / "s.sqlite"
        assert main(
            ["migrate", "--store", str(path), "--rev", "seed",
             str(REPO_ROOT / "BENCH_workload.json")]
        ) == 0
        with ResultsStore(path) as store:
            row = store.latest("workload")
            assert row is not None and row.git_rev == "seed"
            committed = json.loads(
                (REPO_ROOT / "BENCH_workload.json").read_text(encoding="utf-8")
            )
            assert row.payload == committed
