"""Shared fixtures for the results-store tests (all in-memory / tmp)."""

from __future__ import annotations

import pytest

from repro.results import ResultsStore, RunKey


@pytest.fixture
def store() -> ResultsStore:
    with ResultsStore(":memory:") as opened:
        yield opened


def record_simple(
    store: ResultsStore,
    bench: str,
    payload: dict,
    *,
    rev: str,
    recorded_at: str,
    seed: int = 0,
    **key_fields,
) -> int:
    """One-line run recording for tests (explicit rev + timestamp)."""
    return store.record_run(
        RunKey(
            bench=bench,
            seed=seed,
            git_rev=rev,
            recorded_at=recorded_at,
            **key_fields,
        ),
        payload,
    )
