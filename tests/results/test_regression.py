"""Cross-commit regression checks: tolerance edges and directional gates."""

from __future__ import annotations

from repro.results import Gate

from .conftest import record_simple


def seed_history(store, bench, values, *, metric="rate"):
    """Record one run per value at distinct revs/timestamps."""
    for index, value in enumerate(values):
        record_simple(
            store,
            bench,
            {metric: value},
            rev=f"rev{index}",
            recorded_at=f"2026-01-{index + 1:02d}T00:00:00Z",
        )


class TestTolerance:
    def test_inside_tolerance_ok(self, store):
        seed_history(store, "demo", [100.0, 109.0])
        report = store.regression("demo", metrics=[Gate("rate", rtol=0.10)])
        assert report.ok
        assert report.baseline.git_rev == "rev0"
        assert report.latest.git_rev == "rev1"

    def test_at_tolerance_edge_ok(self, store):
        # The differ's contract is <= rtol relative error: exactly-at passes.
        seed_history(store, "demo", [100.0, 110.0])
        assert store.regression("demo", metrics=[Gate("rate", rtol=0.10)]).ok

    def test_outside_tolerance_fails(self, store):
        seed_history(store, "demo", [100.0, 111.5])
        report = store.regression("demo", metrics=[Gate("rate", rtol=0.10)])
        assert not report.ok
        assert "rate" in report.render()

    def test_int_metrics_compare_exactly(self, store):
        seed_history(store, "demo", [100, 101])
        assert not store.regression("demo", metrics=[Gate("rate", rtol=0.25)]).ok
        seed_history(store, "same", [100, 100])
        assert store.regression("same", metrics=[Gate("rate")]).ok


class TestDirectionalGates:
    def test_higher_better_tolerates_any_improvement(self, store):
        seed_history(store, "demo", [100.0, 400.0])
        assert store.regression("demo", metrics=[Gate("+rate", rtol=0.10)]).ok

    def test_higher_better_gates_a_drop(self, store):
        seed_history(store, "demo", [100.0, 80.0])
        assert not store.regression("demo", metrics=[Gate("+rate", rtol=0.10)]).ok
        assert store.regression("demo", metrics=[Gate("+rate", rtol=0.25)]).ok

    def test_lower_better_is_the_mirror(self, store):
        seed_history(store, "demo", [100.0, 20.0])
        assert store.regression("demo", metrics=[Gate("-rate", rtol=0.10)]).ok
        seed_history(store, "worse", [100.0, 130.0])
        assert not store.regression("worse", metrics=[Gate("-rate", rtol=0.10)]).ok

    def test_gate_name_strips_direction(self):
        assert Gate("+a.b").name == "a.b"
        assert Gate("-a.b").direction == "-"
        assert Gate("a.b").direction == ""


class TestBaselineSelection:
    def test_prefers_newest_earlier_different_rev(self, store):
        record_simple(
            store, "demo", {"rate": 100.0}, rev="old",
            recorded_at="2026-01-01T00:00:00Z",
        )
        # Two local re-runs on the same rev: the gate must compare the
        # newest against "old", not against the sibling same-rev row.
        for hour in (1, 2):
            record_simple(
                store, "demo", {"rate": 100.0 + hour}, rev="head",
                recorded_at=f"2026-01-02T0{hour}:00:00Z",
            )
        report = store.regression("demo", metrics=[Gate("rate", rtol=0.10)])
        assert report.baseline.git_rev == "old"
        assert report.latest.recorded_at == "2026-01-02T02:00:00Z"

    def test_falls_back_to_previous_same_rev_row(self, store):
        for hour in (1, 2):
            record_simple(
                store, "demo", {"rate": 100.0}, rev="head",
                recorded_at=f"2026-01-02T0{hour}:00:00Z",
            )
        report = store.regression("demo", metrics=[Gate("rate")])
        assert report.baseline is not None
        assert report.baseline.recorded_at == "2026-01-02T01:00:00Z"

    def test_pinned_baseline_rev(self, store):
        seed_history(store, "demo", [100.0, 200.0, 210.0])
        report = store.regression(
            "demo", metrics=[Gate("rate", rtol=0.10)], baseline_rev="rev0"
        )
        assert report.baseline.git_rev == "rev0"
        assert not report.ok  # 210 vs the pinned 100

    def test_single_run_is_vacuously_ok(self, store):
        seed_history(store, "demo", [100.0])
        report = store.regression("demo", metrics=[Gate("rate")])
        assert report.ok
        assert report.baseline is None
        assert "no baseline" in report.render()

    def test_empty_bench_is_vacuously_ok(self, store):
        report = store.regression("demo", metrics=[Gate("rate")])
        assert report.ok
        assert "no runs" in report.render()


class TestGateCoverage:
    def test_metric_absent_from_both_runs_is_skipped(self, store):
        seed_history(store, "demo", [100.0, 100.0])
        assert store.regression("demo", metrics=[Gate("never.recorded")]).ok

    def test_default_gates_every_shared_metric(self, store):
        record_simple(
            store, "demo", {"a": 1.0, "b": 5.0, "old_only": 1.0},
            rev="rev0", recorded_at="2026-01-01T00:00:00Z",
        )
        record_simple(
            store, "demo", {"a": 1.0, "b": 50.0, "new_only": 1.0},
            rev="rev1", recorded_at="2026-01-02T00:00:00Z",
        )
        report = store.regression("demo")
        assert not report.ok  # b moved 10x
        assert "old_only" not in report.render()
