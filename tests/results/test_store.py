"""Round-trip tests for the sqlite results store."""

from __future__ import annotations

import json

import pytest

from repro.results import ResultsStore, RunKey, flatten_metrics

from .conftest import record_simple

PAYLOAD = {
    "seed": 7,
    "label": "ignored-string",
    "ok": True,
    "scales": {
        "small": {"calls": 120, "calls_per_s": 456.75},
        "medium": {"calls": 480, "calls_per_s": 512.0},
    },
    "percentiles": [10, 50.5, 90],
}


class TestFlatten:
    def test_numeric_leaves_only(self):
        flat = flatten_metrics(PAYLOAD)
        assert flat["seed"] == 7
        assert flat["scales.small.calls"] == 120
        assert flat["scales.small.calls_per_s"] == 456.75
        assert "label" not in flat
        assert "ok" not in flat  # bools are payload facts, not metrics

    def test_list_elements_are_indexed(self):
        flat = flatten_metrics(PAYLOAD)
        assert flat["percentiles[0]"] == 10
        assert flat["percentiles[1]"] == 50.5


class TestRecordRun:
    def test_round_trip_key_and_payload(self, store):
        key = RunKey(
            bench="demo",
            scenario="baseline",
            scale="small",
            seed=7,
            policy="threshold",
            git_rev="abc1234",
            recorded_at="2026-08-07T00:00:00Z",
        )
        run_id = store.record_run(key, PAYLOAD)
        row = store.run(run_id)
        assert row.key == key
        assert row.payload == PAYLOAD
        assert store.latest("demo").id == run_id

    def test_metrics_preserve_intness(self, store):
        run_id = record_simple(
            store, "demo", PAYLOAD, rev="a", recorded_at="2026-01-01T00:00:00Z"
        )
        metrics = store.metrics(run_id)
        assert metrics["scales.small.calls"] == 120
        assert isinstance(metrics["scales.small.calls"], int)
        assert isinstance(metrics["scales.small.calls_per_s"], float)

    def test_recorded_at_required(self, store):
        with pytest.raises(ValueError):
            store.record_run(RunKey(bench="demo", git_rev="a"), {})

    def test_bench_required(self):
        with pytest.raises(ValueError):
            RunKey(bench="")

    def test_filters(self, store):
        for scale in ("small", "medium"):
            record_simple(
                store,
                "demo",
                {"scale_tag": 1},
                rev="a",
                recorded_at="2026-01-01T00:00:00Z",
                scale=scale,
            )
        assert len(store.runs("demo")) == 2
        assert len(store.runs("demo", scale="small")) == 1
        assert store.latest("demo", scale="medium").key.scale == "medium"
        assert store.latest("other") is None


class TestPairAndPerfTables:
    REPORT = {
        "n_calls": 3,
        "pairs": {
            "EU->NA": {
                "calls": 2,
                "vns": {"delay_ms": {"p50": 80.0, "p95": 120.0}},
                "internet": {"delay_ms": {"p50": 140.0}},
            },
            "NA->EU": {"calls": 1, "vns": {"delay_ms": {"p50": 85.0}}},
        },
    }

    def test_pair_rows_split_by_transport(self, store):
        run_id = store.record_run(
            RunKey(bench="demo", git_rev="a", recorded_at="2026-01-01T00:00:00Z"),
            {"seed": 0},
            reports={"small": self.REPORT},
        )
        rows = store.pair_metrics(run_id, transport="vns", metric="delay_ms.p50")
        assert [(src, dst, value) for (_, src, dst, _, _, value) in rows] == [
            ("EU", "NA", 80.0),
            ("NA", "EU", 85.0),
        ]
        # Pair-level columns (no transport sub-block) land under "".
        bare = store.pair_metrics(run_id, transport="", metric="calls")
        assert {(src, dst): value for (_, src, dst, _, _, value) in bare} == {
            ("EU", "NA"): 2.0,
            ("NA", "EU"): 1.0,
        }

    def test_perf_rows(self, store):
        snapshot = {
            "counters": {"bgp.engine.delivered": 42},
            "timers": {"bgp.engine.run": {"calls": 3, "total_s": 1.5, "cpu_s": 1.2}},
        }
        run_id = store.record_run(
            RunKey(bench="demo", git_rev="a", recorded_at="2026-01-01T00:00:00Z"),
            {"seed": 0},
            perf=snapshot,
        )
        assert store.perf_rows(run_id) == [
            ("counter", "bgp.engine.delivered", 42.0, 0.0, 0.0),
            ("timer", "bgp.engine.run", 3.0, 1.5, 1.2),
        ]


class TestTrajectory:
    def test_points_in_recorded_order(self, store):
        for index, rev in enumerate(("aaa", "bbb", "ccc")):
            record_simple(
                store,
                "demo",
                {"speed": 100 + index},
                rev=rev,
                recorded_at=f"2026-01-0{index + 1}T00:00:00Z",
            )
        points = store.trajectory("demo", "speed")
        assert [point.git_rev for point in points] == ["aaa", "bbb", "ccc"]
        assert [point.value for point in points] == [100, 101, 102]

    def test_runs_missing_the_metric_are_skipped(self, store):
        record_simple(
            store, "demo", {"old": 1}, rev="aaa", recorded_at="2026-01-01T00:00:00Z"
        )
        record_simple(
            store, "demo", {"speed": 9}, rev="bbb", recorded_at="2026-01-02T00:00:00Z"
        )
        assert [p.value for p in store.trajectory("demo", "speed")] == [9]


class TestJsonlHistory:
    def test_export_import_reexport_byte_identical(self, store, tmp_path):
        record_simple(
            store,
            "demo",
            PAYLOAD,
            rev="aaa",
            recorded_at="2026-01-01T00:00:00Z",
            seed=7,
        )
        record_simple(
            store,
            "demo",
            {"seed": 8, "calls": 3},
            rev="bbb",
            recorded_at="2026-01-02T00:00:00Z",
            seed=8,
        )
        history = tmp_path / "history.jsonl"
        text = store.export_jsonl(history)
        assert history.read_text(encoding="utf-8") == text
        assert len(text.splitlines()) == 2

        with ResultsStore(":memory:") as fresh:
            run_ids = fresh.import_jsonl(history)
            assert len(run_ids) == 2
            assert fresh.export_jsonl() == text
            # Metrics are re-derived from each imported payload.
            assert fresh.metrics(run_ids[0])["scales.small.calls"] == 120

    def test_export_lines_are_canonical_json(self, store):
        record_simple(
            store, "demo", {"b": 2, "a": 1}, rev="aaa",
            recorded_at="2026-01-01T00:00:00Z",
        )
        (line,) = store.export_jsonl().splitlines()
        entry = json.loads(line)
        assert list(entry) == sorted(entry)
        assert entry["payload"] == {"a": 1, "b": 2}
