"""Unit tests for the synthetic Internet generator."""

import numpy as np
import pytest

from repro.geo.regions import WorldRegion
from repro.net.asn import ASType
from repro.net.topology import PrefixAllocator, TopologyConfig, generate_topology


class TestPrefixAllocator:
    def test_sequential_disjoint(self):
        alloc = PrefixAllocator()
        a = alloc.allocate()
        b = alloc.allocate()
        assert a != b
        assert not a.contains_prefix(b)
        assert not b.contains_prefix(a)

    def test_length_default_20(self):
        assert PrefixAllocator().allocate().length == 20

    def test_longer_allocation(self):
        prefix = PrefixAllocator().allocate(24)
        assert prefix.length == 24

    def test_shorter_rejected(self):
        with pytest.raises(ValueError):
            PrefixAllocator().allocate(16)


class TestGeneration:
    def test_counts(self, tiny_topology):
        config = TopologyConfig(n_ltp=3, n_stp=8, n_cahp=10, n_ec=12)
        assert len(tiny_topology.ases) == config.total_ases()
        assert len(tiny_topology.ases_of_type(ASType.LTP)) == 3
        assert len(tiny_topology.ases_of_type(ASType.EC)) == 12

    def test_clique_is_fully_meshed(self, tiny_topology):
        clique = tiny_topology.clique
        for i, a in enumerate(clique):
            for b in clique[i + 1 :]:
                assert b in tiny_topology.graph.peers_of(a)

    def test_every_as_reaches_clique(self, tiny_topology):
        for asn in tiny_topology.graph.asns():
            assert tiny_topology.graph.has_provider_path_to_clique(
                asn, tiny_topology.clique
            )

    def test_prefixes_have_origin_and_location(self, tiny_topology):
        for prefix in tiny_topology.prefixes():
            assert prefix in tiny_topology.prefix_location
            assert prefix in tiny_topology.prefix_country
            origin = tiny_topology.origin_as(prefix)
            assert prefix in origin.prefixes

    def test_prefixes_disjoint(self, tiny_topology):
        prefixes = sorted(tiny_topology.prefixes())
        for a, b in zip(prefixes, prefixes[1:]):
            assert not a.contains_prefix(b)

    def test_prefix_near_presence(self, tiny_topology):
        # Prefix locations are jittered around presence cities; the bulk
        # should be within a few hundred km of *some* presence point.
        close = 0
        total = 0
        for prefix in tiny_topology.prefixes():
            origin = tiny_topology.origin_as(prefix)
            location = tiny_topology.prefix_location[prefix]
            nearest = origin.nearest_presence(location)
            total += 1
            if nearest.location.distance_km(location) < 500:
                close += 1
        assert close / total > 0.9

    def test_region_coverage_guaranteed(self, tiny_topology):
        for region in (
            WorldRegion.ASIA_PACIFIC,
            WorldRegion.EUROPE,
            WorldRegion.NORTH_CENTRAL_AMERICA,
            WorldRegion.OCEANIA,
        ):
            systems = tiny_topology.ases_in_region(region)
            types = {system.as_type for system in systems}
            assert ASType.STP in types, f"no STP in {region}"
            assert ASType.EC in types, f"no EC in {region}"

    def test_edge_providers_regional_or_tier1(self, tiny_topology):
        for system in tiny_topology.ases.values():
            if system.as_type is not ASType.CAHP:
                continue
            for provider in tiny_topology.graph.providers_of(system.asn):
                provider_as = tiny_topology.autonomous_system(provider)
                assert (
                    provider_as.as_type is ASType.LTP
                    or provider_as.home.city.region is system.home.city.region
                    # fallback when the home region had no STP at all
                    or not any(
                        s.home.city.region is system.home.city.region
                        for s in tiny_topology.ases_of_type(ASType.STP)
                    )
                )

    def test_fib_resolves_hosts(self, tiny_topology):
        rng = np.random.default_rng(5)
        prefix = tiny_topology.prefixes()[0]
        address = tiny_topology.host_address(prefix, rng)
        resolved = tiny_topology.resolve_address(address)
        assert resolved is not None
        assert resolved[0] == prefix

    def test_determinism(self):
        config = TopologyConfig(n_ltp=2, n_stp=4, n_cahp=4, n_ec=4)
        t1 = generate_topology(config, np.random.default_rng(99))
        t2 = generate_topology(config, np.random.default_rng(99))
        assert t1.prefixes() == t2.prefixes()
        assert {a: s.name for a, s in t1.ases.items()} == {
            a: s.name for a, s in t2.ases.items()
        }

    def test_geoip_built_from_ground_truth(self, tiny_topology):
        db = tiny_topology.build_geoip()
        assert len(db) == len(tiny_topology.prefixes())
        assert db.mean_error_km() == 0.0

    def test_ltps_present_at_major_hubs(self, tiny_topology):
        # Tier-1s should cover most of the big exchange cities.
        for system in tiny_topology.ases_of_type(ASType.LTP):
            cities = {point.city.name for point in system.presence}
            hubs = {"London", "Amsterdam", "Frankfurt", "New York", "Tokyo"}
            assert len(cities & hubs) >= 3
