"""Unit tests for IXPs."""

from repro.geo.cities import city_by_name
from repro.net.ixp import IXP, ixp_for_city


class TestIXP:
    def test_well_known_name(self):
        ixp = ixp_for_city(city_by_name("Amsterdam"))
        assert ixp.name == "AMS-IX"

    def test_generated_name(self):
        ixp = ixp_for_city(city_by_name("Kyiv"))
        assert ixp.name == "IX-Kyiv"

    def test_membership(self):
        ixp = ixp_for_city(city_by_name("London"))
        ixp.add_member(64512)
        ixp.add_member(64512)  # idempotent
        assert 64512 in ixp
        assert len(ixp.members) == 1

    def test_common_members(self):
        a = IXP(name="A", city=city_by_name("London"), members={1, 2, 3})
        b = IXP(name="B", city=city_by_name("Paris"), members={2, 3, 4})
        assert a.common_members(b) == {2, 3}
