"""Unit tests for the radix trie."""

import pytest

from repro.net.addressing import IPv4Address, Prefix
from repro.net.radix import RadixTree


@pytest.fixture
def tree() -> RadixTree:
    t: RadixTree = RadixTree()
    t.insert(Prefix.parse("10.0.0.0/8"), "coarse")
    t.insert(Prefix.parse("10.1.0.0/16"), "mid")
    t.insert(Prefix.parse("10.1.2.0/24"), "fine")
    return t


class TestInsertLookup:
    def test_len(self, tree):
        assert len(tree) == 3

    def test_exact(self, tree):
        assert tree.exact(Prefix.parse("10.1.0.0/16")) == "mid"

    def test_exact_missing_raises(self, tree):
        with pytest.raises(KeyError):
            tree.exact(Prefix.parse("10.2.0.0/16"))

    def test_replace_value(self, tree):
        tree.insert(Prefix.parse("10.1.0.0/16"), "new")
        assert tree.exact(Prefix.parse("10.1.0.0/16")) == "new"
        assert len(tree) == 3

    def test_contains(self, tree):
        assert Prefix.parse("10.0.0.0/8") in tree
        assert Prefix.parse("10.3.0.0/16") not in tree

    def test_stored_none_value(self):
        t: RadixTree = RadixTree()
        t.insert(Prefix.parse("10.0.0.0/8"), None)
        assert Prefix.parse("10.0.0.0/8") in t
        assert t.exact(Prefix.parse("10.0.0.0/8")) is None


class TestLongestMatch:
    def test_most_specific_wins(self, tree):
        hit = tree.longest_match(IPv4Address.parse("10.1.2.3"))
        assert hit == (Prefix.parse("10.1.2.0/24"), "fine")

    def test_mid_level(self, tree):
        hit = tree.longest_match(IPv4Address.parse("10.1.9.1"))
        assert hit == (Prefix.parse("10.1.0.0/16"), "mid")

    def test_coarse_level(self, tree):
        hit = tree.longest_match(IPv4Address.parse("10.200.0.1"))
        assert hit == (Prefix.parse("10.0.0.0/8"), "coarse")

    def test_no_match(self, tree):
        assert tree.longest_match(IPv4Address.parse("11.0.0.1")) is None

    def test_default_route_matches_everything(self):
        t: RadixTree = RadixTree()
        t.insert(Prefix.parse("0.0.0.0/0"), "default")
        assert t.longest_match(IPv4Address.parse("203.0.113.9")) == (
            Prefix.parse("0.0.0.0/0"),
            "default",
        )

    def test_host_route(self):
        t: RadixTree = RadixTree()
        t.insert(Prefix.parse("10.0.0.1/32"), "host")
        assert t.longest_match(IPv4Address.parse("10.0.0.1"))[1] == "host"
        assert t.longest_match(IPv4Address.parse("10.0.0.2")) is None

    def test_matches_returns_all_less_specific_first(self, tree):
        hits = tree.matches(IPv4Address.parse("10.1.2.3"))
        assert [value for _, value in hits] == ["coarse", "mid", "fine"]


class TestDelete:
    def test_delete_leaf(self, tree):
        tree.delete(Prefix.parse("10.1.2.0/24"))
        assert len(tree) == 2
        hit = tree.longest_match(IPv4Address.parse("10.1.2.3"))
        assert hit[1] == "mid"

    def test_delete_inner_keeps_children(self, tree):
        tree.delete(Prefix.parse("10.1.0.0/16"))
        assert tree.longest_match(IPv4Address.parse("10.1.2.3"))[1] == "fine"
        assert tree.longest_match(IPv4Address.parse("10.1.9.1"))[1] == "coarse"

    def test_delete_missing_raises(self, tree):
        with pytest.raises(KeyError):
            tree.delete(Prefix.parse("10.3.0.0/16"))

    def test_delete_then_reinsert(self, tree):
        prefix = Prefix.parse("10.1.2.0/24")
        tree.delete(prefix)
        tree.insert(prefix, "again")
        assert tree.exact(prefix) == "again"


class TestIteration:
    def test_items_complete(self, tree):
        assert len(list(tree.items())) == 3

    def test_prefixes(self, tree):
        assert set(tree.prefixes()) == {
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.1.0.0/16"),
            Prefix.parse("10.1.2.0/24"),
        }
