"""Unit tests for IPv4 addresses and prefixes."""

import pytest

from repro.net.addressing import DEFAULT_ROUTE, IPv4Address, Prefix


class TestIPv4Address:
    def test_parse_and_format(self):
        addr = IPv4Address.parse("192.0.2.1")
        assert str(addr) == "192.0.2.1"
        assert int(addr) == 0xC0000201

    @pytest.mark.parametrize(
        "text", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-4", ""]
    )
    def test_parse_invalid(self, text):
        with pytest.raises(ValueError):
            IPv4Address.parse(text)

    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")
        assert IPv4Address.parse("9.255.255.255") < IPv4Address.parse("10.0.0.0")

    def test_out_of_range_value(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)
        with pytest.raises(ValueError):
            IPv4Address(-1)


class TestPrefix:
    def test_parse_and_format(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert str(prefix) == "10.0.0.0/8"
        assert prefix.length == 8

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.1/8")

    @pytest.mark.parametrize("text", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/x"])
    def test_parse_invalid(self, text):
        with pytest.raises(ValueError):
            Prefix.parse(text)

    def test_from_address_masks_host_bits(self):
        prefix = Prefix.from_address(IPv4Address.parse("10.1.2.3"), 16)
        assert str(prefix) == "10.1.0.0/16"

    def test_contains_address(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.contains_address(IPv4Address.parse("192.0.2.255"))
        assert not prefix.contains_address(IPv4Address.parse("192.0.3.0"))

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_probe_address_is_network_plus_one(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert str(prefix.probe_address) == "192.0.2.1"

    def test_probe_address_host_route(self):
        host = Prefix.parse("192.0.2.7/32")
        assert str(host.probe_address) == "192.0.2.7"

    def test_num_addresses(self):
        assert Prefix.parse("192.0.2.0/24").num_addresses == 256
        assert Prefix.parse("0.0.0.0/0").num_addresses == 1 << 32

    def test_address_at(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert str(prefix.address_at(10)) == "192.0.2.10"
        with pytest.raises(ValueError):
            prefix.address_at(256)

    def test_subnets(self):
        subnets = Prefix.parse("10.0.0.0/8").subnets(10)
        assert len(subnets) == 4
        assert str(subnets[1]) == "10.64.0.0/10"

    def test_subnets_shorter_rejected(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/16").subnets(8)

    def test_supernet(self):
        assert str(Prefix.parse("10.128.0.0/9").supernet()) == "10.0.0.0/8"
        with pytest.raises(ValueError):
            DEFAULT_ROUTE.supernet()

    def test_ordering(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a < b < c

    def test_netmask(self):
        assert Prefix.parse("10.0.0.0/8").netmask() == 0xFF000000
        assert DEFAULT_ROUTE.netmask() == 0
