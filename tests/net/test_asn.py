"""Unit tests for AS entities."""

import pytest

from repro.geo.cities import city_by_name
from repro.net.asn import ASType, AutonomousSystem, PresencePoint


def make_system(asn: int = 64512, cities=("Amsterdam", "Frankfurt")) -> AutonomousSystem:
    points = [
        PresencePoint(city=city_by_name(name), location=city_by_name(name).location)
        for name in cities
    ]
    return AutonomousSystem(
        asn=asn,
        name=f"TEST-{asn}",
        as_type=ASType.STP,
        home=points[0],
        presence=points,
    )


class TestAutonomousSystem:
    def test_positive_asn_required(self):
        with pytest.raises(ValueError):
            make_system(asn=0)

    def test_presence_defaults_to_home(self):
        home = PresencePoint(
            city=city_by_name("Oslo"), location=city_by_name("Oslo").location
        )
        system = AutonomousSystem(
            asn=1, name="X", as_type=ASType.EC, home=home, presence=[]
        )
        assert system.presence == [home]

    def test_transit_flags(self):
        assert make_system().is_transit
        assert not make_system().is_stub
        home = PresencePoint(
            city=city_by_name("Oslo"), location=city_by_name("Oslo").location
        )
        stub = AutonomousSystem(asn=2, name="S", as_type=ASType.EC, home=home)
        assert stub.is_stub

    def test_nearest_presence(self):
        system = make_system(cities=("Amsterdam", "Tokyo"))
        near_eu = city_by_name("London").location
        assert system.nearest_presence(near_eu).city.name == "Amsterdam"
        near_ap = city_by_name("Seoul").location
        assert system.nearest_presence(near_ap).city.name == "Tokyo"

    def test_presence_cities(self):
        system = make_system()
        assert [c.name for c in system.presence_cities()] == ["Amsterdam", "Frankfurt"]

    def test_hash_by_asn(self):
        assert hash(make_system(asn=7)) == hash(make_system(asn=7, cities=("Oslo",)))


class TestASType:
    def test_four_types(self):
        assert {t.value for t in ASType} == {"LTP", "STP", "CAHP", "EC"}
