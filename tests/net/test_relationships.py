"""Unit tests for the AS relationship graph."""

import pytest

from repro.net.relationships import ASGraph, Relationship


@pytest.fixture
def graph() -> ASGraph:
    g = ASGraph()
    # 1 and 2 are providers; 3 buys from both; 4 buys from 3; 3 peers 5.
    g.add_provider_customer(1, 3)
    g.add_provider_customer(2, 3)
    g.add_provider_customer(3, 4)
    g.add_peering(3, 5)
    g.add_provider_customer(1, 5)
    return g


class TestEdges:
    def test_inverse_consistency(self, graph):
        assert graph.relationship(1, 3) is Relationship.CUSTOMER
        assert graph.relationship(3, 1) is Relationship.PROVIDER

    def test_peering_symmetric(self, graph):
        assert graph.relationship(3, 5) is Relationship.PEER
        assert graph.relationship(5, 3) is Relationship.PEER

    def test_self_loop_rejected(self):
        g = ASGraph()
        with pytest.raises(ValueError):
            g.add_peering(1, 1)

    def test_duplicate_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_peering(1, 3)

    def test_unknown_pair_raises(self, graph):
        with pytest.raises(KeyError):
            graph.relationship(1, 4)

    def test_num_links(self, graph):
        assert graph.num_links() == 5


class TestQueries:
    def test_customers_of(self, graph):
        assert set(graph.customers_of(1)) == {3, 5}

    def test_providers_of(self, graph):
        assert set(graph.providers_of(3)) == {1, 2}

    def test_peers_of(self, graph):
        assert graph.peers_of(3) == [5]

    def test_customer_cone(self, graph):
        assert graph.customer_cone(1) == {1, 3, 4, 5}
        assert graph.customer_cone(4) == {4}

    def test_relationship_inverse_helper(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PEER.inverse() is Relationship.PEER


class TestCliqueReachability:
    def test_all_reach_clique(self, graph):
        for asn in graph.asns():
            assert graph.has_provider_path_to_clique(asn, [1, 2])

    def test_orphan_does_not_reach(self):
        g = ASGraph()
        g.add_as(9)
        g.add_provider_customer(1, 2)
        assert not g.has_provider_path_to_clique(9, [1])
        assert g.has_provider_path_to_clique(2, [1])
        assert g.has_provider_path_to_clique(1, [1])
