"""Unit tests for the geo-based route reflector."""

import pytest

from repro.bgp.attributes import AsPath, Route
from repro.bgp.session import Session, SessionType
from repro.geo.coords import GeoPoint
from repro.geo.geoip import GeoIPDatabase
from repro.net.addressing import Prefix
from repro.vns.geo_rr import (
    GEO_LP_BASE,
    GeoRouteReflector,
    linear_lp,
    stepped_lp,
)

ASN = 65000
PFX = Prefix.parse("203.0.113.0/24")
AMSTERDAM = GeoPoint(52.37, 4.90)
SINGAPORE = GeoPoint(1.35, 103.82)


def make_reflector(geoip=None) -> GeoRouteReflector:
    if geoip is None:
        geoip = GeoIPDatabase()
        geoip.register(PFX, GeoPoint(51.9, 4.5), "NL")
    rr = GeoRouteReflector(
        "RR",
        ASN,
        geoip=geoip,
        router_locations={"A": AMSTERDAM, "B": SINGAPORE},
    )
    for client in ("A", "B"):
        rr.add_session(
            Session(
                peer_id=client,
                session_type=SessionType.IBGP,
                peer_asn=ASN,
                rr_client=True,
            )
        )
    return rr


def ibgp_route(next_hop: str) -> Route:
    return Route(prefix=PFX, as_path=AsPath((100, 9)), next_hop=next_hop)


class TestLpFunctions:
    def test_linear_monotone_decreasing(self):
        assert linear_lp(0) > linear_lp(1000) > linear_lp(10_000) >= linear_lp(30_000)

    def test_linear_always_above_default(self):
        for d in (0, 500, 5_000, 20_037, 50_000):
            assert linear_lp(d) >= GEO_LP_BASE > 100

    def test_linear_clamps_negative(self):
        assert linear_lp(-5) == linear_lp(0)

    def test_stepped_buckets(self):
        assert stepped_lp(0) == stepped_lp(100)  # same 500 km bucket
        assert stepped_lp(0) > stepped_lp(600)

    def test_stepped_above_default(self):
        assert stepped_lp(25_000) >= GEO_LP_BASE


class TestGeoAssignment:
    def test_closer_egress_gets_higher_pref(self):
        rr = make_reflector()
        from_a = rr.assign_geo_preference(ibgp_route("A"))
        from_b = rr.assign_geo_preference(ibgp_route("B"))
        assert from_a.local_pref > from_b.local_pref
        assert from_a.local_pref > 1000

    def test_unknown_router_location_left_alone(self):
        rr = make_reflector()
        route = rr.assign_geo_preference(ibgp_route("unknown-router"))
        assert route.local_pref == 100
        assert rr.stats["no_location"] == 1

    def test_geoip_miss_falls_back_to_default(self):
        rr = make_reflector(geoip=GeoIPDatabase())
        route = rr.assign_geo_preference(ibgp_route("A"))
        assert route.local_pref == 100
        assert rr.stats["no_geoip"] == 1

    def test_transform_applies_on_ibgp_import(self):
        rr = make_reflector()
        session = rr.session_to("A")
        imported = rr.transform_imported(
            ibgp_route("A").received("A", ebgp=False), session
        )
        assert imported.local_pref > 1000
        assert rr.stats["assigned"] == 1

    def test_reflection_prefers_geo_closest(self):
        rr = make_reflector()
        from repro.bgp.messages import Update

        rr.process(Update(sender="B", receiver="RR", route=ibgp_route("B")))
        out = rr.process(Update(sender="A", receiver="RR", route=ibgp_route("A")))
        # After hearing A (closer to the NL prefix), the reflected best
        # must point at A.
        assert rr.best(PFX).next_hop == "A"
        assert any(
            getattr(m, "route", None) is not None and m.route.next_hop == "A"
            for m in out
        )

    def test_custom_lp_function(self):
        geoip = GeoIPDatabase()
        geoip.register(PFX, GeoPoint(51.9, 4.5), "NL")
        rr = GeoRouteReflector(
            "RR",
            ASN,
            geoip=geoip,
            router_locations={"A": AMSTERDAM},
            lp_function=lambda d: 7777,
        )
        assert rr.assign_geo_preference(ibgp_route("A")).local_pref == 7777


class TestOptimisedHotPath:
    """The memoized fast path must be invisible except for speed."""

    def test_matches_reference_implementation(self):
        rr = make_reflector()
        ref = make_reflector()
        for next_hop in ("A", "B"):
            fast = rr.assign_geo_preference(ibgp_route(next_hop))
            slow = ref.assign_geo_preference_reference(ibgp_route(next_hop))
            assert fast.local_pref == slow.local_pref

    def test_memo_hit_returns_same_decision(self):
        rr = make_reflector()
        first = rr.assign_geo_preference(ibgp_route("A"))
        second = rr.assign_geo_preference(ibgp_route("A"))  # memo hit
        assert second.local_pref == first.local_pref

    def test_no_copy_when_pref_unchanged(self):
        rr = make_reflector()
        assigned = rr.assign_geo_preference(ibgp_route("A"))
        again = rr.assign_geo_preference(assigned)
        assert again is assigned  # LOCAL_PREF already correct: no replace()

    def test_memo_invalidated_by_geoip_mutation(self):
        rr = make_reflector()
        before = rr.assign_geo_preference(ibgp_route("A")).local_pref
        rr.geoip.override(PFX, location=GeoPoint(1.29, 103.85))  # move to SG
        after = rr.assign_geo_preference(ibgp_route("A")).local_pref
        assert after < before  # Amsterdam egress is now far away

    def test_memo_handles_registration_after_miss(self):
        rr = make_reflector(geoip=GeoIPDatabase())
        assert rr.assign_geo_preference(ibgp_route("A")).local_pref == 100
        rr.geoip.register(PFX, GeoPoint(51.9, 4.5), "NL")
        assert rr.assign_geo_preference(ibgp_route("A")).local_pref > 1000

    def test_memo_eviction_keeps_decisions_correct(self):
        rr = make_reflector()
        rr._memo_size = 1
        for prefix_text in ("198.51.100.0/24", "192.0.2.0/24"):
            rr.geoip.register(
                Prefix.parse(prefix_text), GeoPoint(51.9, 4.5), "NL"
            )
        routes = [ibgp_route("A")]
        for prefix_text in ("198.51.100.0/24", "192.0.2.0/24"):
            routes.append(
                Route(
                    prefix=Prefix.parse(prefix_text),
                    as_path=AsPath((100, 9)),
                    next_hop="A",
                )
            )
        expected = [rr.assign_geo_preference(r).local_pref for r in routes]
        evicted = [rr.assign_geo_preference(r).local_pref for r in routes]
        assert evicted == expected
        assert len(rr._lp_memo) == 1


class TestStatsCounters:
    """All five counters, including the management-hook paths."""

    def test_assigned_counter(self):
        rr = make_reflector()
        rr.assign_geo_preference(ibgp_route("A"))
        assert rr.stats["assigned"] == 1

    def test_no_location_counter(self):
        rr = make_reflector()
        rr.assign_geo_preference(ibgp_route("nowhere"))
        assert rr.stats["no_location"] == 1
        assert rr.stats["assigned"] == 0

    def test_no_geoip_counter(self):
        rr = make_reflector(geoip=GeoIPDatabase())
        rr.assign_geo_preference(ibgp_route("A"))
        assert rr.stats["no_geoip"] == 1
        assert rr.stats["assigned"] == 0

    def test_exempt_counter_via_management_hook(self):
        from repro.vns.management import ManagementInterface

        management = ManagementInterface()
        management.exempt_from_geo(PFX)
        rr = make_reflector()
        rr.management = management
        session = rr.session_to("A")
        imported = rr.transform_imported(
            ibgp_route("A").received("A", ebgp=False), session
        )
        assert imported.local_pref == 100  # untouched: default behaviour
        assert rr.stats["exempt"] == 1
        assert rr.stats["assigned"] == 0

    def test_forced_counter_via_management_hook(self):
        from repro.vns.management import FORCED_EXIT_LP, ManagementInterface

        management = ManagementInterface()
        management.force_exit(PFX, "A")
        rr = make_reflector()
        rr.management = management
        session = rr.session_to("A")
        # Matching egress: pinned at the forced preference.
        pinned = rr.transform_imported(
            Route(prefix=PFX, as_path=AsPath((100, 9)), next_hop="A-r1").received(
                "A", ebgp=False
            ),
            session,
        )
        assert pinned.local_pref == FORCED_EXIT_LP
        assert rr.stats["forced"] == 1
        # Non-matching egress: falls through to the geo assignment.
        fallback = rr.transform_imported(
            ibgp_route("B").received("A", ebgp=False), session
        )
        assert fallback.local_pref > 1000
        assert rr.stats["forced"] == 2
        assert rr.stats["assigned"] == 1

    def test_memoization_does_not_skew_counters(self):
        # Repeated assignments of the same (egress, prefix) must count
        # each call, memo hit or not — and misses are never memoized.
        rr = make_reflector()
        for _ in range(5):
            rr.assign_geo_preference(ibgp_route("A"))
        assert rr.stats["assigned"] == 5
        for _ in range(3):
            rr.assign_geo_preference(ibgp_route("nowhere"))
        assert rr.stats["no_location"] == 3
        missing = Route(
            prefix=Prefix.parse("198.51.100.0/24"),
            as_path=AsPath((100, 9)),
            next_hop="A",
        )
        for _ in range(2):
            rr.assign_geo_preference(missing)
        assert rr.stats["no_geoip"] == 2
        assert rr.stats["assigned"] == 5  # untouched by the miss paths
