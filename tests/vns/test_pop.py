"""Unit tests for PoP definitions."""

import pytest

from repro.geo.regions import PopRegion
from repro.vns.pop import (
    POPS,
    nearest_pop,
    pop_by_code,
    pop_by_id,
    pops_in_region,
    total_border_routers,
)
from repro.geo.cities import city_by_name


class TestFootprint:
    def test_eleven_pops(self):
        assert len(POPS) == 11

    def test_four_continents(self):
        assert {pop.region for pop in POPS} == set(PopRegion)

    def test_over_twenty_border_routers(self):
        # Sec. 3.2: "over 20 routers in 11 PoPs".
        assert total_border_routers() > 20

    def test_fig4_constraints(self):
        # PoP 10 is London; 3 and 5 US east coast; 7 AP; 9 EU.
        assert pop_by_id(10).code == "LON"
        assert pop_by_id(3).region is PopRegion.NA
        assert pop_by_id(5).region is PopRegion.NA
        assert pop_by_id(7).region is PopRegion.AP
        assert pop_by_id(9).region is PopRegion.EU

    def test_unique_ids_and_codes(self):
        assert len({pop.pop_id for pop in POPS}) == 11
        assert len({pop.code for pop in POPS}) == 11

    def test_lookup_roundtrip(self):
        for pop in POPS:
            assert pop_by_id(pop.pop_id) is pop
            assert pop_by_code(pop.code) is pop

    def test_unknown_lookups(self):
        with pytest.raises(KeyError):
            pop_by_id(99)
        with pytest.raises(KeyError):
            pop_by_code("XXX")

    def test_router_ids(self):
        lon = pop_by_code("LON")
        assert lon.router_ids() == ["LON-r1", "LON-r2"]

    def test_regional_clusters(self):
        assert {p.code for p in pops_in_region(PopRegion.EU)} == {
            "OSL",
            "AMS",
            "FRA",
            "LON",
        }
        assert {p.code for p in pops_in_region(PopRegion.OC)} == {"SYD"}

    def test_nearest_pop(self):
        assert nearest_pop(city_by_name("Paris").location).code in ("LON", "AMS", "FRA")
        assert nearest_pop(city_by_name("Melbourne").location).code == "SYD"

    def test_nearest_pop_matches_exact_haversine(self):
        # The cached-trig fast path must agree with the textbook formula
        # for every PoP from a spread of vantage points.
        from repro.geo.coords import great_circle_km

        for city in ("Paris", "Tokyo", "Atlanta", "Singapore", "Oslo"):
            location = city_by_name(city).location
            exact = min(POPS, key=lambda pop: great_circle_km(pop.location, location))
            assert nearest_pop(location) is exact

    def test_nearest_pop_among_subset(self):
        paris = city_by_name("Paris").location
        subset = [pop_by_code("SYD"), pop_by_code("TYO")]
        assert nearest_pop(paris, among=subset).code == "TYO"

    def test_nearest_pop_empty_candidates(self):
        with pytest.raises(ValueError):
            nearest_pop(city_by_name("Paris").location, among=[])
