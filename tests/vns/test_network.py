"""Unit tests for the assembled VNS network (structure and queries)."""

import pytest

from repro.geo.geoip import GeoIPDatabase
from repro.vns.network import (
    VNS_ASN,
    VnsNetwork,
    external_peer_id,
    parse_external_peer_id,
)
from repro.vns.pop import POPS


class TestPeerIds:
    def test_round_trip(self):
        peer_id = external_peer_id(1234, "LON-r1")
        assert parse_external_peer_id(peer_id) == (1234, "LON-r1")

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_external_peer_id("not-an-id")


class TestConstruction:
    def test_route_reflector_mode(self):
        net = VnsNetwork(geoip=GeoIPDatabase())
        assert len(net.border_routers) == sum(p.n_border_routers for p in POPS)
        assert len(net.reflectors) == 2
        # Every border has sessions to both reflectors.
        for router in net.border_routers.values():
            assert set(router.sessions) >= set(net.reflectors)

    def test_full_mesh_mode(self):
        net = VnsNetwork(geoip=GeoIPDatabase(), geo_routing=False, ibgp_mode="full-mesh")
        assert not net.reflectors
        n = len(net.border_routers)
        for router in net.border_routers.values():
            assert len(router.sessions) == n - 1

    def test_geo_requires_reflectors(self):
        with pytest.raises(ValueError):
            VnsNetwork(geoip=GeoIPDatabase(), geo_routing=True, ibgp_mode="full-mesh")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            VnsNetwork(geoip=GeoIPDatabase(), ibgp_mode="ring")

    def test_igp_l2_paths(self):
        net = VnsNetwork(geoip=GeoIPDatabase())
        path = net.pop_l2_path("AMS", "SIN")
        assert path[0] == "AMS" and path[-1] == "SIN"
        assert net.pop_l2_path("AMS", "AMS") == ["AMS"]

    def test_routers_at_pop(self):
        net = VnsNetwork(geoip=GeoIPDatabase())
        lon = net.routers_at_pop("LON")
        assert [r.router_id for r in lon] == ["LON-r1", "LON-r2"]

    def test_add_ebgp_session(self):
        net = VnsNetwork(geoip=GeoIPDatabase())
        peer_id = net.add_ebgp_session("LON-r1", 777)
        router = net.border_routers["LON-r1"]
        assert router.session_to(peer_id).peer_asn == 777

    def test_asn_constant(self):
        net = VnsNetwork(geoip=GeoIPDatabase())
        assert all(r.asn == VNS_ASN for r in net.border_routers.values())
