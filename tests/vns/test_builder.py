"""Tests for the VNS deployment builder on a real (tiny) topology."""

import numpy as np
import pytest

from repro.bgp.propagation import AsLevelRouting
from repro.net.asn import ASType
from repro.net.relationships import Relationship
from repro.vns.builder import VnsConfig, build_vns
from repro.vns.network import VNS_ASN
from repro.vns.pop import POPS


@pytest.fixture(scope="module")
def deployment(tiny_topology_module):
    topology = tiny_topology_module
    routing = AsLevelRouting(topology.graph)
    geoip = topology.build_geoip()
    return build_vns(
        topology,
        routing,
        geoip,
        VnsConfig(max_peers=6),
        np.random.default_rng(11),
    ), topology


@pytest.fixture(scope="module")
def tiny_topology_module():
    from repro.net.topology import TopologyConfig, generate_topology

    return generate_topology(
        TopologyConfig(n_ltp=3, n_stp=8, n_cahp=10, n_ec=12),
        np.random.default_rng(7),
    )


class TestDeployment:
    def test_upstream_mix(self, deployment):
        dep, topology = deployment
        types = {topology.autonomous_system(a).as_type for a in dep.upstreams}
        assert ASType.LTP in types
        # Regional wholesale providers are part of the upstream set.
        assert ASType.STP in types

    def test_relationships(self, deployment):
        dep, _ = deployment
        for asn in dep.upstreams:
            assert dep.relationship_of(asn) is Relationship.PROVIDER
        for asn in dep.peers:
            assert dep.relationship_of(asn) is Relationship.PEER

    def test_vns_registered_in_graph(self, deployment):
        dep, topology = deployment
        assert VNS_ASN in topology.graph
        assert set(topology.graph.providers_of(VNS_ASN)) == set(dep.upstreams)

    def test_every_pop_has_min_upstreams(self, deployment):
        dep, _ = deployment
        for pop in POPS:
            at_pop = [a for a in dep.upstreams if pop.code in dep.session_pops(a)]
            assert len(at_pop) >= 2, pop.code

    def test_main_upstream_everywhere(self, deployment):
        dep, _ = deployment
        for pop in POPS:
            main = dep.main_upstream_at[pop.code]
            assert pop.code in dep.session_pops(main)

    def test_london_main_upstream_us_based(self, deployment):
        dep, topology = deployment
        main = dep.main_upstream_at["LON"]
        system = topology.autonomous_system(main)
        # The designated LON upstream is the Tier-1 with the weakest EU
        # footprint among the global upstreams.
        assert system.as_type is ASType.LTP

    def test_peers_exclude_tier1_and_stubs(self, deployment):
        dep, topology = deployment
        for asn in dep.peers:
            as_type = topology.autonomous_system(asn).as_type
            assert as_type in (ASType.STP, ASType.CAHP)

    def test_converged_with_routes(self, deployment):
        dep, topology = deployment
        assert dep.network.engine.converged
        assert dep.network.total_loc_rib_size() > 0
        # Every border router knows (nearly) the full table.
        router = dep.network.border_routers["AMS-r1"]
        coverage = len(router.loc_rib) / len(topology.prefixes())
        assert coverage > 0.95

    def test_anycast_announced_externally(self, deployment):
        dep, _ = deployment
        announced = {
            m.route.prefix
            for m in dep.network.engine.external_outbox
            if hasattr(m, "route")
        }
        assert dep.anycast_prefix in announced

    def test_transit_routes_never_exported(self, deployment):
        # VNS must not provide transit: only its own prefixes leave.
        dep, _ = deployment
        for message in dep.network.engine.external_outbox:
            route = getattr(message, "route", None)
            if route is None:
                continue
            assert route.as_path.origin_as == VNS_ASN

    def test_neighbor_asns_ordering(self, deployment):
        dep, _ = deployment
        combined = dep.neighbor_asns
        assert combined[: len(dep.upstreams)] == dep.upstreams
