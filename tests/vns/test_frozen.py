"""Tests for frozen world snapshots (:mod:`repro.vns.frozen`).

The contract: a frozen service is a drop-in read replica — every path
builder and the campaign engine produce bit-identical output on it —
while being a fraction of the full service's pickle and refusing any
mutation.
"""

import pickle

import pytest

from repro.vns import FrozenNetwork, FrozenWorldError, freeze_service, is_frozen
from repro.vns.pop import POPS
from repro.workload import (
    CallArrivalProcess,
    CampaignConfig,
    CampaignEngine,
    UserPopulation,
)


@pytest.fixture(scope="module")
def frozen(small_world):
    return freeze_service(small_world.service)


class TestFreeze:
    def test_is_frozen_and_idempotent(self, small_world, frozen):
        assert not is_frozen(small_world.service)
        assert is_frozen(frozen)
        assert freeze_service(frozen) is frozen
        assert isinstance(frozen.deployment.network, FrozenNetwork)

    def test_shares_topology_routing_geoip(self, small_world, frozen):
        assert frozen.topology is small_world.service.topology
        assert frozen.routing is small_world.service.routing
        assert frozen.geoip is small_world.service.geoip

    def test_pickle_is_smaller_and_round_trips(self, small_world, frozen):
        full = pickle.dumps(small_world.service, protocol=pickle.HIGHEST_PROTOCOL)
        compact = pickle.dumps(frozen, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(compact) < len(full) / 2
        clone = pickle.loads(compact)
        assert is_frozen(clone)


class TestReadEquivalence:
    def test_egress_decisions_match_everywhere(self, small_world, frozen):
        live = small_world.service.deployment.network
        cold = frozen.deployment.network
        prefixes = [
            prefix
            for asys in small_world.topology.ases.values()
            for prefix in asys.prefixes
        ][:120]
        for pop in POPS:
            for prefix in prefixes:
                assert cold.egress_decision(pop.code, prefix) == live.egress_decision(
                    pop.code, prefix
                )

    def test_pop_paths_and_external_routes_match(self, small_world, frozen):
        live = small_world.service.deployment.network
        cold = frozen.deployment.network
        for src in POPS:
            for dst in POPS:
                if src.code == dst.code:
                    continue  # both sides raise ValueError for self-paths
                assert cold.pop_l2_path(src.code, dst.code) == live.pop_l2_path(
                    src.code, dst.code
                )
        prefixes = [
            prefix
            for asys in small_world.topology.ases.values()
            for prefix in asys.prefixes
        ][:60]
        for pop in POPS:
            for prefix in prefixes:
                assert cold.local_external_route(
                    pop.code, prefix
                ) == live.local_external_route(pop.code, prefix)

    def test_campaign_report_byte_identical(self, small_world, frozen):
        population = UserPopulation.sample(small_world.topology, 40, seed=3)
        calls = CallArrivalProcess(
            population, calls_per_user_day=2.0, seed=4
        ).generate(days=1)
        config = CampaignConfig(seed=5)
        live_json = (
            CampaignEngine(small_world.service, config).run(calls).report.to_json()
        )
        frozen_json = CampaignEngine(frozen, config).run(calls).report.to_json()
        assert frozen_json == live_json


class TestReadOnly:
    def test_mutations_raise(self, frozen):
        network = frozen.deployment.network
        with pytest.raises(FrozenWorldError, match="link state"):
            network.set_link_state("LHR", "FRA", False)
        with pytest.raises(FrozenWorldError, match="PoP state"):
            network.set_pop_state("LHR", False)
        with pytest.raises(FrozenWorldError, match="convergence"):
            network.converge()

    def test_health_reads_still_work(self, frozen):
        network = frozen.deployment.network
        assert network.pop_is_up("LHR")
        assert network.link_is_up("LHR", "FRA")
        assert network.total_loc_rib_size() > 0
