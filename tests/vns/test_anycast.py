"""Tests for anycast entry-PoP resolution."""

from repro.geo.regions import PopRegion
from repro.net.asn import ASType
from repro.vns.network import VNS_ASN


class TestAnycast:
    def test_entry_path_terminates_at_vns(self, small_world):
        service = small_world.service
        user = next(
            s
            for s in service.topology.ases.values()
            if s.as_type is ASType.EC and s.prefixes
        )
        resolved = service.anycast.entry_path(user.asn, user.home.location)
        assert resolved is not None
        pop, as_path = resolved
        assert as_path[-1] == VNS_ASN
        assert as_path[0] == user.asn

    def test_entry_pop_has_session_with_last_hop(self, small_world):
        service = small_world.service
        for system in service.topology.ases.values():
            if not system.prefixes or system.as_type is not ASType.EC:
                continue
            resolved = service.anycast.entry_path(system.asn, system.home.location)
            assert resolved is not None
            pop, as_path = resolved
            neighbor = as_path[-2]
            assert pop.code in service.deployment.session_pops(neighbor)

    def test_mostly_follows_geography(self, small_world):
        """Across all edge ASes, entries land in the user's PoP region for
        a solid majority — the Fig. 7 headline."""
        service = small_world.service
        matches = 0
        total = 0
        for system in service.topology.ases.values():
            if system.as_type not in (ASType.EC, ASType.CAHP):
                continue
            pop = service.anycast.entry_pop(system.asn, system.home.location)
            if pop is None:
                continue
            total += 1
            if pop.region is system.home.city.pop_region:
                matches += 1
        assert total > 10
        assert matches / total > 0.6

    def test_nearest_pop_ideal(self, small_world):
        from repro.geo.cities import city_by_name

        resolver = small_world.service.anycast
        assert resolver.nearest_pop(city_by_name("Paris").location).region is PopRegion.EU
