"""Tests for the VideoNetworkService façade."""

import numpy as np
import pytest

from repro.dataplane.link import SegmentKind
from repro.net.addressing import Prefix
from repro.vns.pop import POPS, pop_by_code


class TestEgressDecisions:
    def test_geo_routing_picks_nearest_pop(self, small_world):
        """With an exact GeoIP database the geo egress is the
        geographically nearest PoP for (almost) every prefix."""
        from repro.geo.coords import great_circle_km

        service = small_world.service
        matches = 0
        total = 0
        for prefix in service.topology.prefixes():
            decision = service.egress_decision("LON", prefix)
            if decision is None:
                continue
            location = service.geoip.reported_location(prefix)
            nearest = min(
                POPS, key=lambda pop: great_circle_km(pop.location, location)
            )
            total += 1
            matches += nearest.code == decision.egress_pop
        assert total > 0
        assert matches / total > 0.95

    def test_decision_consistent_across_entries(self, small_world):
        """The geo egress is a network-wide property: every entry PoP
        resolves the same egress PoP."""
        service = small_world.service
        for prefix in service.topology.prefixes()[:40]:
            egresses = set()
            for entry in ("LON", "SJS", "SIN"):
                decision = service.egress_decision(entry, prefix)
                if decision is not None:
                    egresses.add(decision.egress_pop)
            assert len(egresses) <= 1

    def test_unknown_prefix_returns_none(self, small_world):
        missing = Prefix.parse("172.31.0.0/16")
        assert small_world.service.egress_decision("LON", missing) is None


class TestPathBuilders:
    def test_vns_internal_path_segments(self, small_world):
        path = small_world.service.vns_internal_path("AMS", "SIN")
        assert all(s.kind is SegmentKind.VNS_L2 for s in path.segments)
        assert path.rtt_ms() > 100

    def test_vns_internal_same_pop_empty(self, small_world):
        path = small_world.service.vns_internal_path("AMS", "AMS")
        assert len(path) == 0
        assert path.rtt_ms() == 0.0

    def test_path_via_vns_structure(self, small_world):
        service = small_world.service
        prefix = service.topology.prefixes()[3]
        path = service.path_via_vns("LON", prefix)
        assert path is not None
        kinds = [segment.kind for segment in path.segments]
        assert kinds[-1] is SegmentKind.ACCESS
        # Internal leg first (if the egress is remote), then the handoff.
        assert SegmentKind.PEERING in kinds

    def test_path_local_exit(self, small_world):
        service = small_world.service
        prefix = service.topology.prefixes()[3]
        path = service.path_local_exit("LON", prefix)
        assert path is not None
        assert path.segments[0].start == pop_by_code("LON").location

    def test_upstreams_only_restricts_first_hop(self, small_world):
        service = small_world.service
        upstreams = set(service.deployment.upstreams)
        for prefix in service.topology.prefixes()[:30]:
            resolved = service._external_route_at_pop("LON", prefix, True)
            if resolved is None:
                continue
            asn, _ = resolved
            assert asn in upstreams

    def test_pop_to_pop_transit_path(self, small_world):
        path = small_world.service.path_between_pops_via_upstream("AMS", "SIN")
        assert path.segments[-1].kind is not SegmentKind.ACCESS
        assert path.rtt_ms() > small_world.service.vns_internal_path("AMS", "SIN").rtt_ms() * 0.5

    def test_last_mile_path_typed(self, small_world):
        service = small_world.service
        prefix = service.topology.prefixes()[0]
        origin = service.topology.origin_as(prefix)
        rng = np.random.default_rng(0)
        location = service.topology.host_location(prefix, rng)
        path = service.last_mile_path(prefix, location, "AMS")
        assert path.segments[0].kind is SegmentKind.ACCESS
        assert path.segments[0].as_type is origin.as_type


class TestCalls:
    def test_call_paths_both_transports(self, small_world):
        service = small_world.service
        prefixes = service.topology.prefixes()
        rng = np.random.default_rng(1)
        src, dst = prefixes[1], prefixes[-2]
        call = service.call_paths(
            src,
            service.topology.host_location(src, rng),
            dst,
            service.topology.host_location(dst, rng),
        )
        assert call is not None
        assert call.via_vns.rtt_ms() > 0
        assert call.via_internet.rtt_ms() > 0
        assert call.entry_pop in {pop.code for pop in POPS}
        assert call.exit_pop in {pop.code for pop in POPS}


class TestStaticMoreSpecifics:
    def test_apply_static_more_specific(self, small_world_with_errors):
        """Uses the error-injected world (module-separate fixture) so the
        shared clean world is not mutated."""
        service = small_world_with_errors.service
        # Pick a routed prefix and a /22 inside it.
        parent = service.topology.prefixes()[0]
        sub = parent.subnets(parent.length + 2)[1]
        service.apply_static_more_specific(sub, "SIN")
        # The more specific must now steer SIN-ward from any entry.
        decision = service.egress_decision("LON", sub)
        assert decision is not None
        assert decision.egress_pop == "SIN"
        # And it must never be announced externally.
        leaked = [
            m
            for m in service.network.engine.external_outbox
            if getattr(m, "route", None) is not None and m.route.prefix == sub
        ]
        assert not leaked

    def test_requires_covering_route(self, small_world_with_errors):
        service = small_world_with_errors.service
        orphan = Prefix.parse("172.31.0.0/24")
        with pytest.raises(ValueError):
            service.apply_static_more_specific(orphan, "SIN")


class TestUpstreamPathFallback:
    def test_distinct_upstreams_use_as_path(self, small_world):
        """When the two PoPs' preferred upstreams differ, the transit leg
        follows the AS-level route between them."""
        service = small_world.service
        pair = None
        for src in ("LON", "SJS", "SIN", "AMS", "ASH"):
            for dst in ("LON", "SJS", "SIN", "AMS", "ASH"):
                if src == dst:
                    continue
                if service._preferred_upstream_at(src) != service._preferred_upstream_at(dst):
                    pair = (src, dst)
                    break
            if pair:
                break
        assert pair is not None, "test world has a single upstream everywhere"
        path = service.path_between_pops_via_upstream(*pair)
        assert path.rtt_ms() > 0
        assert path.description == f"transit:{pair[0]}->{pair[1]}"

    def test_missing_route_falls_back_to_direct_pair(self, small_world, monkeypatch):
        """If AS-level routing cannot resolve the upstream pair, the path
        builder degrades to the two-hop (u_src, u_dst) chain instead of
        failing the baseline measurement."""
        service = small_world.service
        pair = None
        for src in ("LON", "SJS", "SIN", "AMS", "ASH"):
            for dst in ("LON", "SJS", "SIN", "AMS", "ASH"):
                if src != dst and service._preferred_upstream_at(
                    src
                ) != service._preferred_upstream_at(dst):
                    pair = (src, dst)
                    break
            if pair:
                break
        assert pair is not None
        reference = service.path_between_pops_via_upstream(*pair)
        monkeypatch.setattr(service.routing, "path", lambda a, b: None)
        fallback = service.path_between_pops_via_upstream(*pair)
        assert fallback.rtt_ms() > 0
        assert len(fallback.segments) <= len(reference.segments)

    def test_shared_upstream_skips_routing(self, small_world, monkeypatch):
        """A single shared upstream never consults AS-level routing."""
        service = small_world.service
        shared = None
        for src in ("LON", "SJS", "SIN", "AMS", "ASH", "FRA", "NYC"):
            for dst in ("LON", "SJS", "SIN", "AMS", "ASH", "FRA", "NYC"):
                if src != dst and service._preferred_upstream_at(
                    src
                ) == service._preferred_upstream_at(dst):
                    shared = (src, dst)
                    break
            if shared:
                break
        if shared is None:
            pytest.skip("no PoP pair shares an upstream in this world")

        def explode(a, b):  # pragma: no cover - must not be reached
            raise AssertionError("routing.path consulted for shared upstream")

        monkeypatch.setattr(service.routing, "path", explode)
        path = service.path_between_pops_via_upstream(*shared)
        assert path.rtt_ms() > 0


class TestLondonDetour:
    def test_prefix_hash_selection_deterministic(self, small_world):
        """The detour decision is a pure function of (asn, prefix)."""
        service = small_world.service
        asn = service.deployment.main_upstream_at["LON"]
        detours = {}
        for prefix in service.topology.prefixes()[:60]:
            first = service._london_detour_point(asn, prefix)
            second = service._london_detour_point(asn, prefix)
            assert first == second
            detours[prefix] = first
        # The hash selects three quarters of destinations: both outcomes
        # must occur, and each must match the documented hash rule.
        assert any(point is None for point in detours.values())
        assert any(point is not None for point in detours.values())
        for prefix, point in detours.items():
            expected_local = (prefix.network >> 12) % 4 == 0
            assert (point is None) == expected_local

    def test_other_asn_never_detours(self, small_world):
        service = small_world.service
        asn = service.deployment.main_upstream_at["LON"]
        other = next(a for a in service.topology.ases if a != asn)
        for prefix in service.topology.prefixes()[:20]:
            assert service._london_detour_point(other, prefix) is None


class TestEgressResolvedOnce:
    def test_call_paths_resolves_egress_once(self, small_world, monkeypatch):
        """The egress decision is resolved a single time per call and
        threaded through to the VNS path builder."""
        service = small_world.service
        prefixes = service.topology.prefixes()
        src, dst = prefixes[1], prefixes[-2]
        calls = []
        original = service.network.egress_decision

        def counting(entry_pop, prefix):
            calls.append((entry_pop, prefix))
            return original(entry_pop, prefix)

        monkeypatch.setattr(service.network, "egress_decision", counting)
        result = service.call_paths(
            src,
            service.topology.prefix_location[src],
            dst,
            service.topology.prefix_location[dst],
        )
        assert result is not None
        assert len(calls) == 1

    def test_path_via_vns_accepts_precomputed_decision(self, small_world):
        service = small_world.service
        prefix = service.topology.prefixes()[3]
        decision = service.egress_decision("AMS", prefix)
        assert decision is not None
        with_decision = service.path_via_vns("AMS", prefix, decision=decision)
        without = service.path_via_vns("AMS", prefix)
        assert with_decision is not None and without is not None
        assert with_decision.rtt_ms() == pytest.approx(without.rtt_ms())
