"""Unit tests for the L2 topology."""

import pytest

from repro.igp.spf import spf
from repro.vns.links import (
    VNS_LONG_HAUL_LINKS,
    build_l2_topology,
    l2_links,
    router_level_igp,
)
from repro.vns.pop import POPS, pops_in_region
from repro.geo.regions import PopRegion


class TestL2Links:
    def test_regional_full_mesh(self):
        links = {(link.a, link.b) for link in l2_links()} | {
            (link.b, link.a) for link in l2_links()
        }
        eu = [pop.code for pop in pops_in_region(PopRegion.EU)]
        for i, a in enumerate(eu):
            for b in eu[i + 1 :]:
                assert (a, b) in links

    def test_not_fully_meshed_globally(self):
        # The paper: "The PoPs are not fully meshed".
        n = len(POPS)
        assert len(l2_links()) < n * (n - 1) / 2

    def test_long_haul_flags(self):
        for link in l2_links():
            if (link.a, link.b) in VNS_LONG_HAUL_LINKS:
                assert link.long_haul
                assert link.distance_km() > 2500

    def test_singapore_direct_links(self):
        # Sec. 4.3: Singapore has "direct dedicated links to Australia,
        # USA and Europe".
        sin_links = {
            frozenset((a, b)) for a, b in VNS_LONG_HAUL_LINKS if "SIN" in (a, b)
        }
        assert frozenset(("SIN", "SYD")) in sin_links
        assert frozenset(("SIN", "SJS")) in sin_links
        assert frozenset(("SIN", "AMS")) in sin_links


class TestTopologyBuild:
    def test_connected(self):
        graph, links = build_l2_topology()
        assert graph.is_connected()
        assert len(graph.nodes()) == 11

    def test_metrics_track_delay(self):
        graph, _ = build_l2_topology()
        # A long-haul link must cost more than a metro link.
        assert graph.metric("SIN", "SJS") > graph.metric("AMS", "FRA")

    def test_singapore_delay_advantage(self):
        # From SIN, direct circuits give competitive internal paths.
        graph, _ = build_l2_topology()
        result = spf(graph, "SIN")
        for code in ("SYD", "SJS", "AMS"):
            path = result.path_to(code)
            assert path == ["SIN", code]

    def test_router_level_graph(self):
        pop_graph, _ = build_l2_topology()
        router_graph = router_level_igp(pop_graph)
        assert router_graph.is_connected()
        assert len(router_graph.nodes()) == sum(p.n_border_routers for p in POPS)
        # Intra-PoP links are cheap.
        assert router_graph.metric("LON-r1", "LON-r2") == 1.0
