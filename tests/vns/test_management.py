"""Unit tests for the management override interface."""

import pytest

from repro.bgp.attributes import NO_EXPORT, AsPath, Route
from repro.geo.coords import GeoPoint
from repro.geo.geoip import GeoIPDatabase
from repro.net.addressing import Prefix
from repro.vns.geo_rr import GeoRouteReflector
from repro.vns.management import FORCED_EXIT_LP, ManagementInterface, tag_no_export

ASN = 65000
PFX = Prefix.parse("203.0.113.0/24")


def make_pair() -> tuple[ManagementInterface, GeoRouteReflector]:
    geoip = GeoIPDatabase()
    geoip.register(PFX, GeoPoint(51.9, 4.5), "NL")
    management = ManagementInterface()
    rr = GeoRouteReflector(
        "RR",
        ASN,
        geoip=geoip,
        router_locations={
            "AMS-r1": GeoPoint(52.37, 4.90),
            "SIN-r1": GeoPoint(1.35, 103.82),
        },
        management=management,
    )
    return management, rr


def route(next_hop: str) -> Route:
    return Route(prefix=PFX, as_path=AsPath((100, 9)), next_hop=next_hop)


class TestForceExit:
    def test_forced_pop_gets_pinned_pref(self):
        management, rr = make_pair()
        management.force_exit(PFX, "SIN")
        handled = management.transform(rr, route("SIN-r1"))
        assert handled.local_pref == FORCED_EXIT_LP

    def test_other_pops_keep_geo_pref(self):
        management, rr = make_pair()
        management.force_exit(PFX, "SIN")
        handled = management.transform(rr, route("AMS-r1"))
        assert 1000 < handled.local_pref < FORCED_EXIT_LP
        assert rr.stats["forced"] >= 1

    def test_clear_forced_exit(self):
        management, rr = make_pair()
        management.force_exit(PFX, "SIN")
        management.clear_forced_exit(PFX)
        assert management.transform(rr, route("AMS-r1")) is None
        management.clear_forced_exit(PFX)  # idempotent


class TestExemption:
    def test_exempt_keeps_imported_pref(self):
        management, rr = make_pair()
        management.exempt_from_geo(PFX)
        original = route("AMS-r1")
        handled = management.transform(rr, original)
        assert handled is original
        assert rr.stats["exempt"] == 1

    def test_clear_exemption(self):
        management, rr = make_pair()
        management.exempt_from_geo(PFX)
        management.clear_exemption(PFX)
        assert management.transform(rr, route("AMS-r1")) is None


class TestStaticMoreSpecifics:
    def test_registration(self):
        management, _ = make_pair()
        sub = Prefix.parse("203.0.113.0/25")
        management.add_static_more_specific(sub, "SIN")
        assert management.static_more_specifics() == {sub: "SIN"}

    def test_overrides_count(self):
        management, _ = make_pair()
        assert management.overrides_count() == 0
        management.force_exit(PFX, "SIN")
        management.exempt_from_geo(Prefix.parse("198.51.100.0/24"))
        management.add_static_more_specific(Prefix.parse("203.0.113.0/25"), "SIN")
        assert management.overrides_count() == 3


class TestTagNoExport:
    def test_tagging(self):
        tagged = tag_no_export(route("AMS-r1"))
        assert NO_EXPORT in tagged.communities
