"""Unit tests for the perf counter/timer layer."""

import pytest

from repro import perf


@pytest.fixture(autouse=True)
def clean_perf():
    """Every test starts disabled and empty, and leaves no residue."""
    perf.disable()
    perf.reset()
    yield
    perf.disable()
    perf.reset()


class TestSwitch:
    def test_off_by_default(self):
        assert not perf.is_enabled()

    def test_enable_disable(self):
        perf.enable()
        assert perf.is_enabled()
        perf.disable()
        assert not perf.is_enabled()

    def test_disabled_probes_record_nothing(self):
        perf.incr("x")
        with perf.timer("y"):
            pass
        snap = perf.snapshot()
        assert snap["counters"] == {}
        assert snap["timers"] == {}


class TestCounters:
    def test_incr_accumulates(self):
        perf.enable()
        perf.incr("a")
        perf.incr("a", 4)
        assert perf.counter("a") == 5

    def test_unknown_counter_is_zero(self):
        assert perf.counter("never") == 0

    def test_reset_clears(self):
        perf.enable()
        perf.incr("a")
        perf.reset()
        assert perf.counter("a") == 0


class TestTimers:
    def test_timer_context_manager(self):
        perf.enable()
        with perf.timer("region"):
            sum(range(1000))
        snap = perf.snapshot()["timers"]["region"]
        assert snap["calls"] == 1
        assert snap["total_s"] >= 0.0

    def test_timed_decorator(self):
        perf.enable()

        @perf.timed("fn")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert work(1) == 2
        snap = perf.snapshot()["timers"]["fn"]
        assert snap["calls"] == 2

    def test_decorator_transparent_when_disabled(self):
        @perf.timed("fn")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert perf.snapshot()["timers"] == {}

    def test_timer_records_on_exception(self):
        perf.enable()
        with pytest.raises(RuntimeError):
            with perf.timer("boom"):
                raise RuntimeError("x")
        assert perf.snapshot()["timers"]["boom"]["calls"] == 1


class TestWiring:
    def test_engine_run_is_instrumented(self):
        from repro.bgp.engine import BgpEngine
        from repro.bgp.router import BgpRouter

        engine = BgpEngine()
        engine.add_router(BgpRouter("a", 65000))
        perf.enable()
        engine.run()
        snap = perf.snapshot()
        assert "bgp.engine.run" in snap["timers"]

    def test_radix_longest_match_is_counted(self):
        from repro.net.addressing import IPv4Address, Prefix
        from repro.net.radix import RadixTree

        tree = RadixTree()
        tree.insert(Prefix.parse("203.0.113.0/24"), "x")
        perf.enable()
        tree.longest_match(IPv4Address.parse("203.0.113.7"))
        tree.longest_match(IPv4Address.parse("198.51.100.1"))
        assert perf.counter("net.radix.longest_match") == 2

    def test_geo_assign_counts_memo_hits(self):
        from repro.bgp.attributes import AsPath, Route
        from repro.geo.coords import GeoPoint
        from repro.geo.geoip import GeoIPDatabase
        from repro.net.addressing import Prefix
        from repro.vns.geo_rr import GeoRouteReflector

        prefix = Prefix.parse("203.0.113.0/24")
        geoip = GeoIPDatabase()
        geoip.register(prefix, GeoPoint(51.9, 4.5), "NL")
        rr = GeoRouteReflector(
            "RR", 65000, geoip=geoip, router_locations={"A": GeoPoint(52.37, 4.90)}
        )
        route = Route(prefix=prefix, as_path=AsPath((100,)), next_hop="A")
        perf.enable()
        rr.assign_geo_preference(route)
        rr.assign_geo_preference(route)
        assert perf.counter("geo.assign.calls") == 2
        assert perf.counter("geo.assign.memo_hits") == 1

    def test_report_renders(self):
        perf.enable()
        perf.incr("a.b", 3)
        with perf.timer("c.d"):
            pass
        text = perf.report()
        assert "a.b" in text and "c.d" in text


class TestPerfSnapshot:
    def _populated(self) -> perf.PerfSnapshot:
        perf.enable()
        perf.incr("events.seen", 3)
        perf.add_time("phase.run", 2.0, calls=4, cpu_seconds=1.5)
        return perf.snapshot()

    def test_snapshot_shape(self):
        snap = self._populated()
        assert snap.counters == {"events.seen": 3}
        assert snap.timers == {
            "phase.run": {"calls": 4, "total_s": 2.0, "cpu_s": 1.5}
        }
        # dict-style back-compat
        assert snap["counters"] is snap.counters
        assert snap["timers"] is snap.timers
        with pytest.raises(KeyError):
            snap["nope"]

    def test_merge_sums_counters_and_timers(self):
        left = perf.PerfSnapshot(
            counters={"a": 1, "b": 2},
            timers={"t": {"calls": 1, "total_s": 1.0, "cpu_s": 0.5}},
        )
        right = perf.PerfSnapshot(
            counters={"b": 3, "c": 4},
            timers={
                "t": {"calls": 2, "total_s": 0.5, "cpu_s": 0.25},
                "u": {"calls": 1, "total_s": 9.0, "cpu_s": 9.0},
            },
        )
        merged = left.merge(right)
        assert merged.counters == {"a": 1, "b": 5, "c": 4}
        assert merged.timers["t"] == {"calls": 3, "total_s": 1.5, "cpu_s": 0.75}
        assert merged.timers["u"]["total_s"] == 9.0
        # inputs untouched (snapshots are values)
        assert left.counters == {"a": 1, "b": 2}
        assert left.timers["t"]["calls"] == 1

    def test_diff_is_the_delta_and_drops_empty_rows(self):
        before = self._populated()
        perf.incr("events.seen", 2)
        perf.incr("events.other")
        perf.add_time("phase.run", 1.0, cpu_seconds=0.5)
        delta = perf.snapshot().diff(before)
        assert delta.counters == {"events.seen": 2, "events.other": 1}
        assert delta.timers["phase.run"] == {
            "calls": 1,
            "total_s": 1.0,
            "cpu_s": 0.5,
        }
        # nothing new since the second snapshot -> empty diff
        empty = perf.snapshot().diff(perf.snapshot())
        assert empty.counters == {} and empty.timers == {}

    def test_timer_s_accessor(self):
        snap = self._populated()
        assert snap.timer_s("phase.run") == 2.0
        assert snap.timer_s("phase.run", cpu=True) == 1.5
        assert snap.timer_s("absent") == 0.0

    def test_of_counters(self):
        snap = perf.PerfSnapshot.of_counters({"x": 2})
        assert snap.counters == {"x": 2} and snap.timers == {}

    def test_restore_resets_registry(self):
        before = self._populated()
        perf.incr("events.seen", 10)
        perf.add_time("phase.extra", 1.0)
        perf.restore(before)
        assert perf.snapshot().to_dict() == before.to_dict()

    def test_timers_record_cpu_seconds(self):
        perf.enable()
        with perf.timer("spin"):
            total = 0
            for i in range(20000):
                total += i * i
        entry = perf.snapshot().timers["spin"]
        assert entry["cpu_s"] > 0.0
        assert entry["total_s"] >= entry["cpu_s"] * 0.5  # sane magnitudes
