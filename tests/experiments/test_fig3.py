"""Shape tests for the Fig. 3 experiment (geo-routing precision)."""

import pytest

from repro.experiments import fig3_precision
from repro.geo.regions import PopRegion


@pytest.fixture(scope="module")
def clean_result(small_world):
    return fig3_precision.run(small_world)


@pytest.fixture(scope="module")
def error_result(small_world_with_errors):
    return fig3_precision.run(small_world_with_errors)


class TestPrecisionShape:
    def test_most_prefixes_measured(self, small_world, clean_result):
        assert len(clean_result.records) > 0.8 * len(small_world.topology.prefixes())

    def test_overall_within_20ms(self, clean_result):
        # Paper: "Across all regions, 90% of prefixes are not displaced by
        # more than 20ms"; the small synthetic world is allowed slack.
        assert clean_result.fraction_within(20.0) > 0.75

    def test_diffs_nonnegative_mostly(self, clean_result):
        # geo RTT can beat the "best" only through measurement noise.
        diffs = clean_result.diffs()
        assert sum(1 for d in diffs if d < -1.0) == 0

    def test_clean_world_outliers_rare(self, small_world, clean_result):
        """With an exact database, badly displaced prefixes are rare and
        all of the paper's case-one kind: destinations in regions with no
        nearby PoP, where geography diverges from data-plane proximity."""
        outliers = clean_result.outliers(min_excess_ms=80.0)
        assert len(outliers) <= 0.07 * len(clean_result.records)
        from repro.geo.cities import region_of_point
        from repro.geo.regions import WorldRegion

        pop_covered = {
            WorldRegion.EUROPE,
            WorldRegion.NORTH_CENTRAL_AMERICA,
            WorldRegion.ASIA_PACIFIC,
            WorldRegion.OCEANIA,
        }
        for record in outliers:
            location = small_world.topology.prefix_location[record.prefix]
            region = region_of_point(location)
            # Africa / Middle East / South America destinations — or
            # prefixes hit by the London trans-Atlantic wart.
            assert region not in pop_covered or record.geo_pop == "LON"

    def test_scatter_pairs(self, clean_result):
        scatter = clean_result.scatter()
        assert len(scatter) == len(clean_result.records)
        for best, geo in scatter:
            assert geo >= best - 1.0


class TestErrorInjection:
    def test_errors_create_outliers(self, error_result):
        # The RU (Siberia-centroid) and IN (Canada WHOIS) clusters must
        # displace prefixes badly.
        assert len(error_result.outliers(min_excess_ms=80.0)) >= 3

    def test_errors_reduce_precision(self, clean_result, error_result):
        assert error_result.fraction_within(10.0) <= clean_result.fraction_within(10.0)

    def test_error_world_has_more_outliers(self, clean_result, error_result):
        assert len(error_result.outliers(80.0)) > len(clean_result.outliers(80.0))

    def test_geo_error_clusters_present(self, small_world_with_errors, error_result):
        """At least a handful of outliers trace back to big database
        errors (the Russian/Indian clusters)."""
        geoip = small_world_with_errors.service.geoip
        traced = 0
        for record in error_result.outliers(min_excess_ms=80.0):
            entry = geoip.lookup(record.prefix)
            if entry is not None and entry.error_km > 500:
                traced += 1
        assert traced >= 3


class TestCongruence:
    def test_as_congruence_statistic(self, small_world, clean_result):
        congruence = fig3_precision.as_congruence(small_world, clean_result)
        assert congruence.per_as_agreement
        # Paper: >=25% of prefixes agree in 99% of ASes; >=90% in 60%.
        assert congruence.fraction_of_ases_with_agreement(0.25) > 0.9
        assert congruence.fraction_of_ases_with_agreement(0.9) > 0.4


class TestRender:
    def test_render_contains_regions(self, clean_result):
        text = fig3_precision.render(clean_result)
        for token in ("EU", "NA", "AP", "All", "outliers"):
            assert token in text
