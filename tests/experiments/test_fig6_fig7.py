"""Shape tests for Fig. 6 (delay difference) and Fig. 7 (anycast)."""

import pytest

from repro.experiments import fig6_delay, fig7_incoming
from repro.geo.regions import POP_REGION_FOR_WORLD_REGION, WorldRegion


@pytest.fixture(scope="module")
def fig6(small_world):
    return fig6_delay.run(small_world)


@pytest.fixture(scope="module")
def fig7(small_world):
    return fig7_incoming.run(small_world, requests=800)


class TestFig6:
    def test_all_vantages_measured(self, fig6):
        for code in ("SIN", "AMS", "SJS"):
            assert fig6.measured(code) > 10

    def test_vns_not_worse_fraction_in_band(self, fig6):
        # Paper: "In 10 to 65% of the cases, across all PoPs, VNS is
        # similar or better than upstreams" — our simulated VNS is
        # somewhat more competitive, so allow a wider band.
        for code in ("SIN", "AMS", "SJS"):
            fraction = fig6.fraction_vns_not_worse(code)
            assert 0.1 <= fraction <= 0.95

    def test_delay_not_stretched_much(self, fig6):
        # Paper: "In 87 to 93%, cold-potato routing does not stretch
        # delay by more than 50ms."
        for code in ("SIN", "AMS", "SJS"):
            assert fig6.fraction_within(code, 50.0) > 0.7

    def test_singapore_competitive(self, fig6):
        # Singapore's direct dedicated links make it (one of) the most
        # competitive vantage points.
        sin = fig6.fraction_vns_not_worse("SIN")
        ams = fig6.fraction_vns_not_worse("AMS")
        assert sin >= ams - 0.05

    def test_render(self, fig6):
        assert "SIN" in fig6_delay.render(fig6)


class TestFig7:
    def test_studied_regions_follow_geography(self, fig7):
        for region in (
            WorldRegion.EUROPE,
            WorldRegion.NORTH_CENTRAL_AMERICA,
            WorldRegion.ASIA_PACIFIC,
            WorldRegion.OCEANIA,
        ):
            assert fig7.follows_geography(region), region

    def test_dominant_fraction_substantial(self, fig7):
        for region in (WorldRegion.EUROPE, WorldRegion.NORTH_CENTRAL_AMERICA):
            dominant = POP_REGION_FOR_WORLD_REGION[region]
            assert fig7.fraction(region, dominant) > 0.5

    def test_matrix_rows_normalised(self, fig7):
        for region, row in fig7.matrix.items():
            total = sum(
                fig7.fraction(region, pop_region) for pop_region in set(row)
            )
            assert total == pytest.approx(1.0)

    def test_unknown_region_fraction_zero(self, fig7):
        assert fig7.fraction(WorldRegion.AFRICA, list(fig7.matrix[WorldRegion.EUROPE])[0]) >= 0.0

    def test_render(self, fig7):
        text = fig7_incoming.render(fig7)
        assert "Oceania" in text
