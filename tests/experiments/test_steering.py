"""Shape tests for the steering-policy comparison experiment."""

import json

import pytest

from repro.experiments import steering
from repro.experiments.common import RunConfig, run
from repro.workload import ShardPlan

KWARGS = dict(
    n_users=50,
    calls_per_user_day=2.0,
    days=1,
    seed=3,
    telemetry_minutes=480.0,
    telemetry_hosts=1,
)


@pytest.fixture(scope="module")
def comparison(small_world):
    return steering.run(small_world, **KWARGS)


class TestSteeringExperiment:
    def test_runs_every_policy(self, comparison):
        assert set(comparison.runs) == set(steering.DEFAULT_POLICIES)
        for name, campaign_run in comparison.runs.items():
            assert campaign_run.report.steering is not None
            assert campaign_run.report.steering["policy"] == name

    def test_policies_share_the_campaign(self, comparison):
        n_calls = {run_.report.n_calls for run_ in comparison.runs.values()}
        assert len(n_calls) == 1  # same users, arrivals and resolution

    def test_policy_ordering(self, comparison):
        always = comparison.report("always_vns")
        threshold = comparison.report("threshold_offload")
        budgeted = comparison.report("cost_budgeted")
        assert always["offload_rate"] == 0.0
        assert threshold["offload_rate"] > 0.0
        # Half the projected bytes exceed what QoE-comparability alone
        # offloads at this scale.
        assert budgeted["backbone_bytes_saved"] > threshold["backbone_bytes_saved"]

    def test_seed_reproduces(self, small_world, comparison):
        again = steering.run(small_world, **KWARGS)
        assert again.to_json() == comparison.to_json()

    def test_sharded_matches_sequential(self, small_world, comparison):
        sharded = steering.run(
            small_world,
            **KWARGS,
            policies=("threshold_offload",),
            shard_plan=ShardPlan(n_workers=2, n_shards=3, force_inprocess=True),
        )
        assert (
            sharded.runs["threshold_offload"].report.to_json()
            == comparison.runs["threshold_offload"].report.to_json()
        )

    def test_to_json_is_stable_and_parseable(self, comparison):
        payload = json.loads(comparison.to_json())
        assert payload["seed"] == KWARGS["seed"]
        assert set(payload["policies"]) == set(steering.DEFAULT_POLICIES)

    def test_render_has_policy_rows(self, comparison):
        text = steering.render(comparison)
        assert "Steering policies" in text
        for name in steering.DEFAULT_POLICIES:
            assert name in text
        assert len(text.splitlines()) == 2 + len(comparison.runs)

    def test_budget_fraction_validated(self, small_world):
        with pytest.raises(ValueError):
            steering.run(small_world, budget_fraction=1.5)

    def test_uniform_api_entry(self, small_world):
        result = run(
            small_world,
            RunConfig.of(
                "steering", policies=("always_vns",), **KWARGS
            ),
        )
        assert result.report("always_vns")["offload_rate"] == 0.0
        assert "Steering policies" in result.render()
