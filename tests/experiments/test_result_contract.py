"""The uniform ExperimentResult contract: render / to_row / to_json."""

from __future__ import annotations

import json

import pytest

from repro.experiments import campaign
from repro.experiments.common import ExperimentResult
from repro.workload.engine import CampaignRun


@pytest.fixture(scope="module")
def result(small_world) -> CampaignRun:
    return campaign.run(
        small_world, n_users=60, calls_per_user_day=3.0, days=1, seed=5
    )


class TestProtocol:
    def test_campaign_run_satisfies_the_protocol(self, result):
        assert isinstance(result, ExperimentResult)

    def test_known_result_classes_carry_the_contract(self):
        from repro.experiments.failover import FailoverResult
        from repro.experiments.fig6_delay import Fig6Result
        from repro.experiments.scenario import ScenarioRun
        from repro.experiments.steering import SteeringComparison
        from repro.workload.sharded import ShardedCampaignRun

        for cls in (
            CampaignRun,
            ShardedCampaignRun,
            FailoverResult,
            Fig6Result,
            ScenarioRun,
            SteeringComparison,
        ):
            for method in ("render", "to_row", "to_json"):
                assert callable(getattr(cls, method)), f"{cls.__name__}.{method}"


class TestCampaignRow:
    def test_row_is_flat_and_numeric(self, result):
        row = result.to_row()
        assert row["calls"] == result.report.n_calls
        for name, value in row.items():
            assert isinstance(name, str)
            assert isinstance(value, (int, float)), name

    def test_json_carries_report_and_row(self, result):
        payload = json.loads(result.to_json())
        assert payload["row"] == result.to_row()
        assert payload["report"] == result.report.to_dict()

    def test_json_is_canonical(self, result):
        text = result.to_json()
        assert text == json.dumps(json.loads(text), indent=2, sort_keys=True)

    def test_row_feeds_record_row_style_kwargs(self, result):
        """Dotted keys must be usable as **kwargs (bench accumulators)."""

        def sink(**metrics: float) -> dict:
            return metrics

        assert sink(**result.to_row()) == result.to_row()
