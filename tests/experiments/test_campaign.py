"""Shape tests for the campaign experiment driver."""

import pytest

from repro.experiments import campaign


@pytest.fixture(scope="module")
def result(small_world):
    return campaign.run(
        small_world, n_users=60, calls_per_user_day=3.0, days=1, seed=5
    )


class TestCampaignExperiment:
    def test_campaign_completes(self, result):
        assert result.stats.calls_resolved > 0
        assert result.report.n_calls == result.stats.calls_resolved

    def test_seed_reproduces_report(self, small_world, result):
        again = campaign.run(
            small_world, n_users=60, calls_per_user_day=3.0, days=1, seed=5
        )
        assert again.report.to_json() == result.report.to_json()

    def test_render_has_corridor_rows(self, result):
        text = campaign.render(result)
        assert "Campaign" in text
        assert "path-cache hit rate" in text
        # One row per directed region pair present in the report.
        assert len(text.splitlines()) == 4 + len(result.report.pairs)


@pytest.mark.slow
class TestCampaignPoolReuse:
    """``workers > 1`` rides the world's persistent pool across runs."""

    def test_two_sharded_runs_reuse_one_pool(self, small_world, result):
        first = campaign.run(
            small_world, n_users=60, calls_per_user_day=3.0, days=1, seed=5,
            workers=2,
        )
        pool = small_world.campaign_pool()
        assert pool.started and not pool.closed
        second = campaign.run(
            small_world, n_users=60, calls_per_user_day=3.0, days=1, seed=5,
            workers=2,
        )
        assert small_world.campaign_pool() is pool
        assert pool.stats.runs == 2
        sequential = result.report.to_json()
        assert first.report.to_json() == sequential
        assert second.report.to_json() == sequential
        small_world.close_pool()
        assert pool.closed
