"""Shared experiment-campaign fixtures (expensive; session-scoped)."""

import pytest

from repro.experiments.lastmile import LastMileData, run_lastmile_campaign
from repro.experiments.video import VideoCampaignResult, run_video_campaign
from repro.media.codec import PROFILE_1080P, PROFILE_720P


@pytest.fixture(scope="session")
def video_campaign(small_world) -> VideoCampaignResult:
    """A scaled-down Sec. 5.1 campaign (both profiles)."""
    return run_video_campaign(
        small_world,
        days=2,
        minutes_between_rounds=60.0,
        profiles=(PROFILE_1080P, PROFILE_720P),
    )


@pytest.fixture(scope="session")
def lastmile_data(small_world) -> LastMileData:
    """A scaled-down Sec. 5.2 campaign."""
    return run_lastmile_campaign(
        small_world,
        hosts_per_type_per_region=6,
        days=2,
        minutes_between_rounds=60.0,
    )
