"""Shape tests for Fig. 4 (egress selection) and Fig. 5 (neighbours)."""

import pytest

from repro.experiments import fig4_egress, fig5_neighbors


@pytest.fixture(scope="module")
def fig4(small_world_pair):
    return fig4_egress.run(small_world_pair)


@pytest.fixture(scope="module")
def fig5(small_world_pair):
    return fig5_neighbors.run(small_world_pair)


class TestFig4:
    def test_hot_potato_exits_locally(self, fig4):
        # Paper: "PoP 10 exited traffic locally in 70% of the cases".
        assert fig4.local_exit_pct("before") > 50.0

    def test_geo_routing_spreads_egresses(self, fig4):
        # Paper: "After ... the distribution is more even."
        assert fig4.local_exit_pct("after") < 25.0
        assert fig4.max_share_pct("after") < fig4.max_share_pct("before")
        assert fig4.max_share_pct("after") < 40.0

    def test_percentages_sum_to_100(self, fig4):
        assert sum(fig4.before_pct.values()) == pytest.approx(100.0)
        assert sum(fig4.after_pct.values()) == pytest.approx(100.0)

    def test_after_uses_many_pops(self, fig4):
        assert len([v for v in fig4.after_pct.values() if v > 1.0]) >= 8

    def test_invalid_when(self, fig4):
        with pytest.raises(ValueError):
            fig4.local_exit_pct("sometimes")

    def test_render(self, fig4):
        text = fig4_egress.render(fig4)
        assert "LON" in text and "before" in text


class TestFig5:
    def test_transit_share_stable_around_80(self, fig5):
        # Paper: "the percentage of destination prefixes reached through
        # upstreams has remained stable at around 80%".
        assert 55.0 < fig5.transit_share_before_pct < 95.0
        assert 60.0 < fig5.transit_share_after_pct < 95.0
        assert abs(fig5.transit_share_after_pct - fig5.transit_share_before_pct) < 30.0

    def test_upstreams_listed_first(self, fig5):
        kinds = [row.is_upstream for row in fig5.neighbors]
        n_up = sum(kinds)
        assert all(kinds[:n_up])
        assert not any(kinds[n_up:])

    def test_peers_present(self, fig5):
        assert fig5.peer_rows()

    def test_top_upstream_dominates_after(self, fig5):
        shift = fig5.top_upstream_shift()
        assert shift is not None
        first, second = shift
        assert first.after_pct >= second.after_pct

    def test_render(self, fig5):
        text = fig5_neighbors.render(fig5)
        assert "transit share" in text
