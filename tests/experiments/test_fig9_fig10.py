"""Shape tests for Fig. 9 (video loss CCDFs) and Fig. 10 (loss nature)."""

import pytest

from repro.experiments import fig10_loss_nature, fig9_video_loss
from repro.experiments.fig10_loss_nature import LossClass, classify
from repro.experiments.fig9_video_loss import Fig9Result
from repro.geo.regions import PopRegion
from repro.media.codec import PROFILE_1080P, PROFILE_720P


@pytest.fixture(scope="module")
def fig9(video_campaign) -> Fig9Result:
    return Fig9Result(campaign=video_campaign)


class TestFig9:
    def test_vns_dominates_transit(self, fig9):
        """VNS streams must lose less than transit streams for every
        (client, region) pair with data (Fig. 9's headline)."""
        for client in ("AMS", "SJS", "SYD"):
            for region in (PopRegion.AP, PopRegion.EU, PopRegion.NA):
                transit = fig9.fraction_over(client, region, "T")
                vns = fig9.fraction_over(client, region, "I")
                assert vns <= transit

    def test_ap_transit_is_worst(self, fig9):
        """All clients experience significant extra loss to AP through
        upstreams."""
        for client in ("AMS", "SJS"):
            ap = fig9.fraction_over(client, PopRegion.AP, "T")
            eu = fig9.fraction_over(client, PopRegion.EU, "T")
            assert ap > eu

    def test_sydney_to_ap_heavy_loss(self, fig9):
        # Paper: 43% of Sydney->AP transit streams exceed 0.15% loss.
        assert fig9.fraction_over("SYD", PopRegion.AP, "T") > 0.2

    def test_intra_region_vns_lossless(self, fig9):
        # "There is no loss from Sydney to AP, no loss from Amsterdam to
        # EU" through VNS — intra/nearby regions stay clean.
        assert fig9.fraction_over("AMS", PopRegion.EU, "I") < 0.02

    def test_vns_nearly_never_above_1pct(self, fig9):
        for client in ("AMS", "SJS", "SYD"):
            for region in PopRegion:
                assert fig9.fraction_over(client, region, "I", 1.0) < 0.02

    def test_ccdf_accessor(self, fig9):
        ccdf = fig9.ccdf("AMS", PopRegion.AP, "T")
        assert ccdf is not None
        assert ccdf.at(0.0) > 0.0
        assert fig9.ccdf("AMS", PopRegion.AP, "X") is None

    def test_jitter_summary(self, fig9):
        # Sec. 5.1.1: jitter <= 10 ms in 99% (1080p) / 97% (720p).
        j1080 = fig9.jitter_fraction_below(PROFILE_1080P, 10.0)
        j720 = fig9.jitter_fraction_below(PROFILE_720P, 10.0)
        assert j1080 > 0.93
        assert j720 > 0.90
        assert j1080 >= j720 - 0.02

    def test_jitter_below_20ms_nearly_always(self, fig9):
        # "Measured jitter is mostly below 20ms".
        assert fig9.jitter_fraction_below(PROFILE_1080P, 20.0) > 0.985

    def test_render(self, fig9):
        text = fig9_video_loss.render(fig9)
        assert ">0.15%" in text and "jitter" in text


class TestClassify:
    def test_no_loss(self):
        assert classify(0.0, 0) is LossClass.NO_LOSS

    def test_random_baseline(self):
        assert classify(0.01, 6) is LossClass.RANDOM_BASELINE

    def test_short_burst(self):
        assert classify(2.0, 2) is LossClass.SHORT_BURST

    def test_long_burst(self):
        assert classify(3.0, 24) is LossClass.LONG_BURST

    def test_mid_spread_large_loss_is_random(self):
        assert classify(0.5, 10) is LossClass.RANDOM_BASELINE


class TestFig10:
    @pytest.fixture(scope="class")
    def fig10(self, video_campaign):
        return fig10_loss_nature.analyze(video_campaign)

    def test_transit_has_random_baseline(self, fig10):
        assert fig10.count("T", LossClass.RANDOM_BASELINE) > 0

    def test_transit_has_bursty_outliers(self, fig10):
        bursts = fig10.count("T", LossClass.SHORT_BURST) + fig10.count(
            "T", LossClass.LONG_BURST
        )
        assert bursts > 0

    def test_vns_eliminates_outliers(self, fig10):
        assert fig10.count("I", LossClass.SHORT_BURST) == 0
        assert fig10.count("I", LossClass.LONG_BURST) == 0

    def test_vns_eliminates_multi_slot_loss(self, fig10):
        assert fig10.multi_slot_loss_fraction("I") < fig10.multi_slot_loss_fraction("T")

    def test_vns_mostly_lossless(self, fig10):
        sessions = fig10.sessions("I")
        assert fig10.count("I", LossClass.NO_LOSS) / sessions > 0.85

    def test_scatter_available(self, fig10):
        assert len(fig10.scatter("T")) == fig10.sessions("T")

    def test_render(self, fig10):
        text = fig10_loss_nature.render(fig10)
        assert "short-burst" in text
