"""The scenario experiment behind the uniform run() API."""

import pytest

from repro.experiments.common import RunConfig, run
from repro.scenarios import ScenarioSpec


class TestScenarioExperiment:
    def test_canned_scenario_by_name(self, small_world):
        result = run(
            small_world, RunConfig.of("scenario", name="baseline", seed=5)
        )
        assert result.spec.name == "baseline"
        assert result.spec.seed == 5
        assert result.campaign.report.n_calls > 0
        rendered = result.render()
        assert "baseline" in rendered and "Campaign" in rendered

    def test_spec_json_selects_the_scenario(self, small_world):
        spec = ScenarioSpec(name="adhoc", n_users=20, calls_per_user_day=1.0)
        result = run(
            small_world, RunConfig.of("scenario", spec_json=spec.to_json())
        )
        assert result.spec.name == "adhoc"

    def test_spec_scale_is_overridden_by_the_world(self, small_world):
        spec = ScenarioSpec(name="adhoc", n_users=20, calls_per_user_day=1.0)
        spec_json = spec.to_json().replace('"small"', '"large"')
        result = run(small_world, RunConfig.of("scenario", spec_json=spec_json))
        assert result.spec.world.scale == "small"

    def test_exactly_one_selector_required(self, small_world):
        with pytest.raises(ValueError, match="exactly one"):
            run(small_world, RunConfig.of("scenario"))
        with pytest.raises(ValueError, match="exactly one"):
            run(
                small_world,
                RunConfig.of("scenario", name="baseline", spec_json="{}"),
            )

    def test_unknown_name_lists_registry(self, small_world):
        with pytest.raises(KeyError, match="baseline"):
            run(small_world, RunConfig.of("scenario", name="nope"))
