"""Shape tests for Fig. 11, Table 1 and Fig. 12 (last-mile campaign)."""

import pytest

from repro.experiments import fig11_lastmile, fig12_diurnal, table1_astype
from repro.geo.regions import WorldRegion
from repro.net.asn import ASType

AP = WorldRegion.ASIA_PACIFIC
EU = WorldRegion.EUROPE
NA = WorldRegion.NORTH_CENTRAL_AMERICA


@pytest.fixture(scope="module")
def fig11(small_world, lastmile_data):
    return fig11_lastmile.run(small_world, data=lastmile_data)


@pytest.fixture(scope="module")
def table1(small_world, lastmile_data):
    return table1_astype.run(small_world, data=lastmile_data)


@pytest.fixture(scope="module")
def fig12(small_world, lastmile_data):
    return fig12_diurnal.run(small_world, data=lastmile_data)


class TestFig11:
    def test_ap_destinations_worst(self, fig11):
        """From every PoP, AP destinations lose the most."""
        from repro.experiments.lastmile import LASTMILE_POPS

        for pop_code in LASTMILE_POPS:
            ap = fig11.loss(pop_code, AP)
            eu = fig11.loss(pop_code, EU)
            assert ap > eu, pop_code

    def test_distance_raises_loss_toward_eu(self, fig11):
        """AP PoPs see more loss to EU hosts than EU PoPs do (paper:
        2.1-14.2x, excluding London)."""
        ap_to_eu = fig11.region_average("AP", EU)
        eu_to_eu = fig11.region_average("EU", EU)
        assert ap_to_eu > 1.3 * eu_to_eu

    def test_london_anomaly(self, fig11):
        """LON→EU is worse than the other EU PoPs (US-based upstream)."""
        assert fig11.london_eu_ratio() > 1.1

    def test_all_cells_populated(self, fig11):
        from repro.experiments.lastmile import LASTMILE_POPS

        for pop_code in LASTMILE_POPS:
            for region in (AP, EU, NA):
                assert fig11.loss(pop_code, region) > 0.0

    def test_render(self, fig11):
        text = fig11_lastmile.render(fig11)
        assert "London" in text


class TestTable1:
    def test_ap_ltp_best(self, table1):
        ordering = table1.ordering(AP)
        assert ordering[0] is ASType.LTP
        assert ordering[-1] is ASType.CAHP

    def test_eu_ordering(self, table1):
        ordering = table1.ordering(EU)
        assert ordering[0] is ASType.LTP
        assert ordering[-1] is ASType.CAHP

    def test_na_blurred(self, table1):
        """In North America the difference between AS types is small."""
        assert table1.spread(NA) < table1.spread(AP)
        assert table1.spread(NA) < 3.5

    def test_ap_worse_than_eu_per_type(self, table1):
        for as_type in ASType:
            assert table1.loss(AP, as_type) > table1.loss(EU, as_type)

    def test_magnitudes_near_paper(self, table1):
        """Measured cells should land within a factor ~3 of the paper."""
        from repro.experiments.table1_astype import PAPER_TABLE1

        for region, row in PAPER_TABLE1.items():
            for as_type, paper_value in row.items():
                measured = table1.loss(region, as_type)
                assert measured > paper_value / 4
                assert measured < paper_value * 4

    def test_render(self, table1):
        text = table1_astype.render(table1)
        assert "LTP" in text and "CAHP" in text


class TestFig12:
    def test_series_shape(self, fig12):
        for as_type in ASType:
            for region in (AP, EU, NA):
                assert len(fig12.hourly(as_type, region)) == 24

    def test_diurnal_swing_exists(self, fig12):
        """Loss frequency must vary clearly over the day for the
        residential-heavy AS types."""
        assert fig12.peak_to_trough(ASType.CAHP, AP) > 1.5

    def test_cahp_peaks_in_local_window(self, fig12):
        """CAHP loss peaks during destination-local waking hours for at
        least two of the three regions (small-sample noise allowed)."""
        hits = sum(
            fig12.peak_within_local_window(ASType.CAHP, region)
            for region in (AP, EU, NA)
        )
        assert hits >= 2

    def test_ap_losses_concentrated_in_ap_hours(self, fig12):
        """AP destinations lose most packets during AP's local day —
        which in CET is roughly 0:00-16:00 (the paper's 'drops as the day
        ends around 3PM CET')."""
        counts = fig12.hourly(ASType.CAHP, AP)
        ap_day = sum(counts[0:16])
        ap_night = sum(counts[16:24])
        assert ap_day > ap_night

    def test_render(self, fig12):
        text = fig12_diurnal.render(fig12)
        assert "peak" in text
