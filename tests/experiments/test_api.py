"""Tests for the uniform experiment API (RunConfig / ExperimentResult)."""

import pytest

from repro.experiments import (
    EXPERIMENT_MODULES,
    ExperimentResult,
    RunConfig,
    run,
)
from repro.experiments import campaign, fig6_delay
from repro.workload import CampaignRun


class TestRunConfig:
    def test_of_sorts_options_for_equality(self):
        assert RunConfig.of("campaign", a=1, b=2) == RunConfig.of("campaign", b=2, a=1)
        assert hash(RunConfig.of("fig6")) == hash(RunConfig.of("fig6"))

    def test_kwargs_round_trip(self):
        config = RunConfig.of("campaign", n_users=10, seed=3)
        assert config.kwargs() == {"n_users": 10, "seed": 3}

    def test_replace_overrides_and_extends(self):
        config = RunConfig.of("campaign", n_users=10)
        updated = config.replace(n_users=20, seed=1)
        assert updated.kwargs() == {"n_users": 20, "seed": 1}
        assert config.kwargs() == {"n_users": 10}  # original untouched

    def test_frozen(self):
        config = RunConfig.of("campaign")
        with pytest.raises(AttributeError):
            config.experiment = "fig6"


class TestRunDispatch:
    def test_unknown_experiment_lists_known(self, small_world):
        with pytest.raises(KeyError, match="campaign"):
            run(small_world, RunConfig.of("fig99"))

    def test_campaign_through_the_api(self, small_world):
        result = run(
            small_world, RunConfig.of("campaign", n_users=40, days=1, seed=3)
        )
        assert isinstance(result, CampaignRun)
        assert isinstance(result, ExperimentResult)
        direct = campaign.run(small_world, n_users=40, days=1, seed=3)
        assert result.report.to_json() == direct.report.to_json()

    def test_fig6_through_the_api(self, small_world):
        result = run(small_world, RunConfig.of("fig6", max_origins=8))
        assert isinstance(result, ExperimentResult)
        assert result.render().startswith("Fig 6")

    def test_module_table_entries_resolve(self):
        import importlib

        for name, module_name in EXPERIMENT_MODULES.items():
            module = importlib.import_module(module_name)
            assert callable(module.run), name


class TestRenderDelegation:
    def test_module_render_matches_result_render(self, small_world):
        result = campaign.run(small_world, n_users=40, days=1, seed=3)
        assert campaign.render(result) == result.render()
        fig6 = fig6_delay.run(small_world, max_origins=8)
        assert fig6_delay.render(fig6) == fig6.render()

    def test_failover_result_renders(self):
        # Render path only: an empty suite still produces the header rows.
        from repro.experiments.failover import FailoverResult, render

        result = FailoverResult()
        assert render(result) == result.render()
        assert result.render().startswith("Failover")
