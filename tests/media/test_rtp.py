"""Unit tests for RTP accounting."""

import numpy as np
import pytest

from repro.media.codec import PROFILE_1080P
from repro.media.rtp import RtpSession, RtpStreamSpec, new_ssrc


@pytest.fixture
def spec() -> RtpStreamSpec:
    return RtpStreamSpec(ssrc=42, profile=PROFILE_1080P)


class TestSpec:
    def test_paper_slot_structure(self, spec):
        # Two minutes split into 24 five-second slots (Sec. 5.1.2).
        assert spec.n_slots == 24
        assert spec.packets_per_slot == PROFILE_1080P.packets_in(5.0)
        assert spec.total_packets == 24 * spec.packets_per_slot

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            RtpStreamSpec(ssrc=1, profile=PROFILE_1080P, duration_s=0)
        with pytest.raises(ValueError):
            RtpStreamSpec(ssrc=1, profile=PROFILE_1080P, slot_s=0)

    def test_non_divisible_duration_keeps_trailing_seconds(self):
        # Regression: 12 s / 5 s slots used to round to 2 slots, silently
        # dropping the final 2 seconds of media from the accounting.
        spec = RtpStreamSpec(ssrc=1, profile=PROFILE_1080P, duration_s=12.0)
        assert spec.n_slots == 3
        assert spec.slot_duration_s(0) == 5.0
        assert spec.slot_duration_s(1) == 5.0
        assert spec.slot_duration_s(2) == pytest.approx(2.0)
        assert spec.packets_in_slot(2) == PROFILE_1080P.packets_in(2.0)
        assert spec.total_packets == PROFILE_1080P.packets_in(12.0)

    def test_divisible_duration_unchanged(self):
        spec = RtpStreamSpec(ssrc=1, profile=PROFILE_1080P, duration_s=120.0)
        assert spec.n_slots == 24
        assert all(spec.packets_in_slot(i) == spec.packets_per_slot for i in range(24))

    def test_short_duration_single_partial_slot(self):
        spec = RtpStreamSpec(ssrc=1, profile=PROFILE_1080P, duration_s=2.0)
        assert spec.n_slots == 1
        assert spec.packets_in_slot(0) == PROFILE_1080P.packets_in(2.0)
        assert spec.total_packets == PROFILE_1080P.packets_in(2.0)

    def test_slot_duration_out_of_range(self):
        spec = RtpStreamSpec(ssrc=1, profile=PROFILE_1080P, duration_s=12.0)
        with pytest.raises(IndexError):
            spec.slot_duration_s(3)
        with pytest.raises(IndexError):
            spec.slot_duration_s(-1)


class TestSession:
    def test_accounting(self, spec):
        session = RtpSession(spec=spec)
        per_slot = spec.packets_per_slot
        session.record_slot(per_slot)  # clean slot
        session.record_slot(per_slot - 10)  # lossy slot
        assert session.expected == 2 * per_slot
        assert session.lost == 10
        assert session.slot_losses().tolist() == [0, 10]
        assert not session.complete

    def test_loss_percent(self, spec):
        session = RtpSession(spec=spec)
        session.record_slot(spec.packets_per_slot // 2)
        assert session.loss_percent == pytest.approx(50.0, abs=0.1)

    def test_complete_after_all_slots(self, spec):
        session = RtpSession(spec=spec)
        for _ in range(spec.n_slots):
            session.record_slot(spec.packets_per_slot)
        assert session.complete
        with pytest.raises(ValueError):
            session.record_slot(spec.packets_per_slot)

    def test_invalid_received_count(self, spec):
        session = RtpSession(spec=spec)
        with pytest.raises(ValueError):
            session.record_slot(-1)
        with pytest.raises(ValueError):
            session.record_slot(spec.packets_per_slot + 1)

    def test_empty_session_loss(self, spec):
        assert RtpSession(spec=spec).loss_percent == 0.0

    def test_partial_final_slot_accounting(self):
        spec = RtpStreamSpec(ssrc=1, profile=PROFILE_1080P, duration_s=12.0)
        session = RtpSession(spec=spec)
        session.record_slot(spec.packets_in_slot(0))
        session.record_slot(spec.packets_in_slot(1))
        final_capacity = spec.packets_in_slot(2)
        with pytest.raises(ValueError):
            session.record_slot(final_capacity + 1)  # over partial capacity
        session.record_slot(final_capacity - 3)
        assert session.complete
        assert session.expected == spec.total_packets
        assert session.lost == 3
        assert session.slot_losses().tolist() == [0, 0, 3]


class TestSsrc:
    def test_range(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert 0 <= new_ssrc(rng) < 2**32
