"""Unit tests for RTP accounting."""

import numpy as np
import pytest

from repro.media.codec import PROFILE_1080P
from repro.media.rtp import RtpSession, RtpStreamSpec, new_ssrc


@pytest.fixture
def spec() -> RtpStreamSpec:
    return RtpStreamSpec(ssrc=42, profile=PROFILE_1080P)


class TestSpec:
    def test_paper_slot_structure(self, spec):
        # Two minutes split into 24 five-second slots (Sec. 5.1.2).
        assert spec.n_slots == 24
        assert spec.packets_per_slot == PROFILE_1080P.packets_in(5.0)
        assert spec.total_packets == 24 * spec.packets_per_slot

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            RtpStreamSpec(ssrc=1, profile=PROFILE_1080P, duration_s=0)
        with pytest.raises(ValueError):
            RtpStreamSpec(ssrc=1, profile=PROFILE_1080P, slot_s=0)


class TestSession:
    def test_accounting(self, spec):
        session = RtpSession(spec=spec)
        per_slot = spec.packets_per_slot
        session.record_slot(per_slot)  # clean slot
        session.record_slot(per_slot - 10)  # lossy slot
        assert session.expected == 2 * per_slot
        assert session.lost == 10
        assert session.slot_losses().tolist() == [0, 10]
        assert not session.complete

    def test_loss_percent(self, spec):
        session = RtpSession(spec=spec)
        session.record_slot(spec.packets_per_slot // 2)
        assert session.loss_percent == pytest.approx(50.0, abs=0.1)

    def test_complete_after_all_slots(self, spec):
        session = RtpSession(spec=spec)
        for _ in range(spec.n_slots):
            session.record_slot(spec.packets_per_slot)
        assert session.complete
        with pytest.raises(ValueError):
            session.record_slot(spec.packets_per_slot)

    def test_invalid_received_count(self, spec):
        session = RtpSession(spec=spec)
        with pytest.raises(ValueError):
            session.record_slot(-1)
        with pytest.raises(ValueError):
            session.record_slot(spec.packets_per_slot + 1)

    def test_empty_session_loss(self, spec):
        assert RtpSession(spec=spec).loss_percent == 0.0


class TestSsrc:
    def test_range(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert 0 <= new_ssrc(rng) < 2**32
