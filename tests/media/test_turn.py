"""Unit tests for TURN relays and the anycast TURN service."""

import pytest

from repro.media.turn import TurnRelay, TurnService
from repro.net.asn import ASType


class TestTurnRelay:
    def test_open_relay_allocates(self):
        relay = TurnRelay("AMS")
        allocation = relay.allocate("alice")
        assert allocation is not None
        assert allocation.relayed_port >= 49152
        assert relay.allocation_count == 1

    def test_port_pairs(self):
        relay = TurnRelay("AMS")
        a = relay.allocate("alice")
        b = relay.allocate("bob")
        assert b.relayed_port == a.relayed_port + 2

    def test_credentialed_relay(self):
        relay = TurnRelay("AMS", credentials={"alice"})
        assert relay.allocate("alice") is not None
        assert relay.allocate("mallory") is None
        assert relay.auth_failures == 1


class TestTurnService:
    def test_anycast_address_shared(self, small_world):
        service = TurnService(small_world.service)
        assert str(service.anycast_address).startswith("198.51.100.")

    def test_request_resolves_pop(self, small_world):
        service = TurnService(small_world.service)
        topology = small_world.topology
        user = next(
            s for s in topology.ases.values() if s.as_type is ASType.EC and s.prefixes
        )
        allocation, pop = service.request("alice", user.asn, user.home.location)
        assert pop is not None
        assert allocation is not None
        assert allocation.relay.pop_code == pop.code
        counts = service.requests_by_pop()
        assert counts[pop.code] == 1
