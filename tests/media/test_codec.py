"""Unit tests for codec profiles."""

import pytest

from repro.media.codec import AUDIO_OPUS, PROFILE_1080P, PROFILE_720P, VideoProfile


class TestProfiles:
    def test_1080p_packet_rate(self):
        # ~4 Mb/s in ~1190-byte packets is ~420 packets/s.
        assert PROFILE_1080P.packets_per_second == pytest.approx(420, rel=0.02)

    def test_720p_fewer_packets(self):
        # The paper: 720p "consist[s] of fewer video packets".
        assert PROFILE_720P.packets_per_second < PROFILE_1080P.packets_per_second

    def test_audio_flag(self):
        assert not AUDIO_OPUS.is_video
        assert PROFILE_1080P.is_video

    def test_packets_in_duration(self):
        assert PROFILE_1080P.packets_in(120.0) == pytest.approx(
            PROFILE_1080P.packets_per_second * 120, abs=1
        )
        assert PROFILE_1080P.packets_in(0.0) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PROFILE_1080P.packets_in(-1.0)

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            VideoProfile(name="bad", bitrate_bps=0, packet_bytes=100)
        with pytest.raises(ValueError):
            VideoProfile(name="bad", bitrate_bps=1000, packet_bytes=0)
