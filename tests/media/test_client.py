"""Unit tests for the instrumented measurement client."""

import numpy as np
import pytest

from repro.dataplane.link import PathSegment, SegmentKind
from repro.dataplane.path import DataPath
from repro.geo.cities import city_by_name
from repro.media.client import InstrumentedClient, reverse_path
from repro.media.codec import PROFILE_1080P
from repro.media.sip import EchoServer

AMS = city_by_name("Amsterdam").location
SIN = city_by_name("Singapore").location


def transit_path() -> DataPath:
    return DataPath(
        segments=[
            PathSegment(kind=SegmentKind.PEERING, start=AMS, end=AMS, label="in"),
            PathSegment(kind=SegmentKind.TRANSIT, start=AMS, end=SIN, label="haul"),
        ],
        description="fwd",
    )


class TestReversePath:
    def test_segments_reversed(self):
        fwd = transit_path()
        rev = reverse_path(fwd)
        assert len(rev) == len(fwd)
        assert rev.segments[0].start == fwd.segments[-1].end
        assert rev.segments[-1].end == fwd.segments[0].start

    def test_delay_symmetric(self):
        fwd = transit_path()
        assert reverse_path(fwd).one_way_delay_ms() == pytest.approx(
            fwd.one_way_delay_ms()
        )


class TestInstrumentedClient:
    def test_session_measurement(self):
        client = InstrumentedClient("ams", rng=np.random.default_rng(3))
        server = EchoServer("sip:echo-sin@vns", "SIN")
        measurement = client.run_session(server, transit_path(), PROFILE_1080P)
        assert measurement is not None
        assert measurement.call_established
        assert measurement.outbound.n_slots == 24
        assert measurement.inbound.n_slots == 24
        assert measurement.rtt_ms == pytest.approx(transit_path().rtt_ms())
        assert measurement.loss_percent_out >= 0.0
        assert measurement.jitter_p95_ms >= max(
            measurement.outbound.jitter_p95_ms, measurement.inbound.jitter_p95_ms
        ) - 1e-9

    def test_custom_duration(self):
        client = InstrumentedClient("ams", rng=np.random.default_rng(3))
        server = EchoServer("sip:echo-sin@vns", "SIN")
        measurement = client.run_session(
            server, transit_path(), PROFILE_1080P, duration_s=30.0
        )
        assert measurement.outbound.n_slots == 6

    def test_lossy_slots_accessor(self):
        client = InstrumentedClient("ams", rng=np.random.default_rng(3))
        server = EchoServer("sip:echo-sin@vns", "SIN")
        measurement = client.run_session(server, transit_path(), PROFILE_1080P)
        assert measurement.lossy_slots_out == measurement.outbound.lossy_slots
