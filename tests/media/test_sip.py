"""Unit tests for the SIP layer."""

import numpy as np
import pytest

from repro.dataplane.link import PathSegment, SegmentKind
from repro.dataplane.path import DataPath
from repro.geo.cities import city_by_name
from repro.media.codec import PROFILE_1080P
from repro.media.sip import CallState, EchoServer, SipClient, SipResponse

AMS = city_by_name("Amsterdam").location


def clean_path() -> DataPath:
    return DataPath(
        segments=[PathSegment(kind=SegmentKind.PEERING, start=AMS, end=AMS)],
        description="clean",
    )


class TestEchoServer:
    def test_answers_invites(self):
        server = EchoServer("sip:echo@vns", "AMS")
        client = SipClient("sip:client@test")
        call = client.invite(
            server, PROFILE_1080P, clean_path(), rng=np.random.default_rng(0)
        )
        assert call.state is CallState.ESTABLISHED
        assert server.answered == 1

    def test_response_classes(self):
        assert SipResponse.OK.is_success
        assert not SipResponse.REQUEST_TIMEOUT.is_success


class TestSipClient:
    def test_call_ids_unique(self):
        server = EchoServer("sip:echo@vns", "AMS")
        client = SipClient("sip:client@test")
        rng = np.random.default_rng(0)
        call1 = client.invite(server, PROFILE_1080P, clean_path(), rng=rng)
        call2 = client.invite(server, PROFILE_1080P, clean_path(), rng=rng)
        assert call1.call_id != call2.call_id

    def test_transcript_recorded(self):
        server = EchoServer("sip:echo@vns", "AMS")
        client = SipClient("sip:client@test")
        call = client.invite(
            server, PROFILE_1080P, clean_path(), rng=np.random.default_rng(0)
        )
        assert any("INVITE" in line for line in call.transcript)
        assert any("200 OK" in line for line in call.transcript)
        assert any("ACK" in line for line in call.transcript)

    def test_bye_terminates(self):
        server = EchoServer("sip:echo@vns", "AMS")
        client = SipClient("sip:client@test")
        rng = np.random.default_rng(0)
        call = client.invite(server, PROFILE_1080P, clean_path(), rng=rng)
        client.bye(call, clean_path(), rng=rng)
        assert call.state is CallState.TERMINATED

    def test_bye_requires_established(self):
        server = EchoServer("sip:echo@vns", "AMS")
        client = SipClient("sip:client@test")
        rng = np.random.default_rng(0)
        call = client.invite(server, PROFILE_1080P, clean_path(), rng=rng)
        client.bye(call, clean_path(), rng=rng)
        with pytest.raises(ValueError):
            client.bye(call, clean_path(), rng=rng)

    def test_setup_fails_on_totally_lossy_path(self):
        class BlackHole(PathSegment):
            pass

        # A path whose only segment is fully congested access: craft via a
        # transit segment forced to drop everything by monkeypatching the
        # sampler would be intrusive; instead use zero retransmits and a
        # statistically hopeless path.
        lossy = DataPath(
            segments=[
                PathSegment(
                    kind=SegmentKind.TRANSIT,
                    start=city_by_name("Sydney").location,
                    end=city_by_name("Singapore").location,
                )
            ],
            description="lossy",
        )
        client = SipClient("sip:client@test", max_retransmits=0)
        server = EchoServer("sip:echo@vns", "SIN")
        rng = np.random.default_rng(0)
        outcomes = {
            client.invite(server, PROFILE_1080P, lossy, rng=rng).state
            for _ in range(300)
        }
        # The vast majority succeed; occasional failures are possible but
        # the state machine must never produce anything else.
        assert outcomes <= {CallState.ESTABLISHED, CallState.FAILED}

    def test_negative_retransmits_rejected(self):
        with pytest.raises(ValueError):
            SipClient("sip:x@test", max_retransmits=-1)
