"""Tests for the CampaignConfig value object."""

import pytest

from repro.workload import CampaignConfig, CampaignEngine, group_rng
from repro.workload.engine import group_key


class TestCampaignConfig:
    def test_frozen_and_validated(self):
        config = CampaignConfig(seed=3)
        with pytest.raises(AttributeError):
            config.seed = 4
        with pytest.raises(ValueError):
            CampaignConfig(packets_per_second=0)
        with pytest.raises(ValueError):
            CampaignConfig(slot_s=-1.0)

    def test_engine_accepts_config(self, small_world):
        engine = CampaignEngine(small_world.service, CampaignConfig(seed=9))
        assert engine.config == CampaignConfig(seed=9)

    def test_legacy_kwargs_are_gone(self, small_world):
        # The deprecated CampaignEngine(seed=..., slot_s=...) shim was
        # removed after its one-release window: plain TypeError now.
        with pytest.raises(TypeError):
            CampaignEngine(small_world.service, seed=5, slot_s=2.5)
        with pytest.raises(TypeError):
            CampaignEngine(small_world.service, CampaignConfig(), seed=5)

    def test_no_kwargs_no_warning(self, small_world, recwarn):
        engine = CampaignEngine(small_world.service)
        assert engine.config == CampaignConfig()
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestGroupRng:
    def test_same_key_same_stream(self, small_world, rng):
        from repro.workload import CallArrivalProcess, UserPopulation

        population = UserPopulation.sample(small_world.topology, 20, seed=3)
        spec = CallArrivalProcess(population, seed=3).generate(days=1)[0]
        key = group_key(spec)
        first = group_rng(7, key).random(4)
        second = group_rng(7, key).random(4)
        assert (first == second).all()
        assert not (group_rng(8, key).random(4) == first).all()
