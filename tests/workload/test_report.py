"""Tests for campaign aggregation and the stable report."""

import json

import numpy as np
import pytest

from repro.dataplane.transmit import StreamResult
from repro.geo.coords import GeoPoint
from repro.geo.regions import WorldRegion
from repro.net.addressing import Prefix
from repro.workload.arrivals import CallSpec
from repro.workload.engine import CallResult
from repro.workload.population import User
from repro.workload.report import (
    LOSSY_SLOT_THRESHOLD,
    REGION_CODE,
    CampaignAggregator,
    PairAccumulator,
)


def make_user(user_id: int, region: WorldRegion) -> User:
    return User(
        user_id=user_id,
        prefix=Prefix.parse(f"10.{user_id}.0.0/20"),
        asn=65100 + user_id,
        location=GeoPoint(0.0, 0.0),
        region=region,
    )


def make_stream(
    loss_per_slot: list[int], *, packets_per_slot: int = 100, rtt_ms: float = 50.0
) -> StreamResult:
    return StreamResult(
        packets_sent=packets_per_slot * len(loss_per_slot),
        slot_losses=np.array(loss_per_slot),
        jitter_p95_ms=3.0,
        rtt_ms=rtt_ms,
    )


def make_result(
    call_id: int,
    src: WorldRegion,
    dst: WorldRegion,
    *,
    vns_losses: list[int],
    inet_losses: list[int],
    vns_rtt: float = 50.0,
    inet_rtt: float = 80.0,
    multiparty: bool = False,
) -> CallResult:
    spec = CallSpec(
        call_id=call_id,
        caller=make_user(2 * call_id, src),
        callee=make_user(2 * call_id + 1, dst),
        day=0,
        start_hour_cet=12.0,
        duration_s=5.0 * len(vns_losses),
        multiparty=multiparty,
    )
    return CallResult(
        spec=spec,
        entry_pop="AMS",
        egress_pop="ASH",
        via_vns=make_stream(vns_losses, rtt_ms=vns_rtt),
        via_internet=make_stream(inet_losses, rtt_ms=inet_rtt),
    )


class TestPairAccumulator:
    def test_win_rates_and_counts(self):
        aggregator = CampaignAggregator()
        # VNS wins delay both times, loses loss once.
        aggregator.add(
            make_result(
                0,
                WorldRegion.EUROPE,
                WorldRegion.EUROPE,
                vns_losses=[0, 0],
                inet_losses=[5, 5],
                multiparty=True,
            )
        )
        aggregator.add(
            make_result(
                1,
                WorldRegion.EUROPE,
                WorldRegion.EUROPE,
                vns_losses=[8, 8],
                inet_losses=[0, 0],
            )
        )
        summary = aggregator.pairs[("EU", "EU")].summary()
        assert summary["calls"] == 2
        assert summary["multiparty"] == 1
        assert summary["vns_delay_win_rate"] == pytest.approx(1.0)
        assert summary["vns_loss_win_rate"] == pytest.approx(0.5)

    def test_lossy_slot_threshold(self):
        # 100 packets/slot: 1 lost is below the 2% threshold, 2 is at it.
        assert LOSSY_SLOT_THRESHOLD == pytest.approx(0.02)
        accumulator = PairAccumulator(src="EU", dst="EU")
        accumulator.add(
            make_result(
                0,
                WorldRegion.EUROPE,
                WorldRegion.EUROPE,
                vns_losses=[0, 1, 2, 50],
                inet_losses=[0, 0, 0, 0],
            )
        )
        summary = accumulator.summary()
        assert summary["vns"]["lossy_slot_fraction"] == pytest.approx(0.5)
        assert summary["internet"]["lossy_slot_fraction"] == pytest.approx(0.0)

    def test_merge_mismatched_pairs_rejected(self):
        a = PairAccumulator(src="EU", dst="EU")
        b = PairAccumulator(src="EU", dst="NA")
        with pytest.raises(ValueError):
            a.merge(b)


class TestShardMerge:
    def test_sharded_equals_unsharded(self):
        results = [
            make_result(
                i,
                WorldRegion.EUROPE,
                WorldRegion.ASIA_PACIFIC if i % 3 else WorldRegion.EUROPE,
                vns_losses=[i % 4, (i * 7) % 5],
                inet_losses=[(i * 3) % 6, i % 2],
                vns_rtt=40.0 + i,
                inet_rtt=60.0 + (i * 13) % 30,
                multiparty=i % 5 == 0,
            )
            for i in range(60)
        ]
        whole = CampaignAggregator()
        for result in results:
            whole.add(result)
        shard_a, shard_b = CampaignAggregator(), CampaignAggregator()
        for i, result in enumerate(results):
            (shard_a if i % 2 else shard_b).add(result)
        shard_a.merge(shard_b)
        merged = shard_a.report(seed=1).to_dict()
        reference = whole.report(seed=1).to_dict()
        assert merged == reference


class TestReport:
    def test_json_stable_and_sorted(self):
        aggregator = CampaignAggregator()
        aggregator.add(
            make_result(
                0,
                WorldRegion.NORTH_CENTRAL_AMERICA,
                WorldRegion.EUROPE,
                vns_losses=[1, 2],
                inet_losses=[3, 4],
            )
        )
        report = aggregator.report(seed=4, n_failed=2, turn_allocations=1)
        text = report.to_json()
        assert text == aggregator.report(
            seed=4, n_failed=2, turn_allocations=1
        ).to_json()
        parsed = json.loads(text)
        assert parsed["seed"] == 4
        assert parsed["n_calls"] == 1
        assert parsed["n_failed"] == 2
        assert parsed["turn_allocations"] == 1
        assert list(parsed["pairs"]) == ["NA->EU"]
        assert report.pair("NA", "EU") is not None
        assert report.pair("EU", "NA") is None

    def test_region_codes_cover_all_regions(self):
        assert set(REGION_CODE) == set(WorldRegion)
        assert len(set(REGION_CODE.values())) == len(WorldRegion)
