"""Tests for the diurnal Poisson call-arrival process."""

import numpy as np
import pytest

from repro.workload.arrivals import (
    DURATION_CHOICES_S,
    CallArrivalProcess,
    call_rate_profile,
)
from repro.workload.population import UserPopulation


@pytest.fixture(scope="module")
def population(small_world):
    return UserPopulation.sample(small_world.topology, 100, seed=21)


class TestGeneration:
    def test_deterministic_under_seed(self, population):
        a = CallArrivalProcess(population, seed=5).generate(days=1)
        b = CallArrivalProcess(population, seed=5).generate(days=1)
        assert a == b

    def test_different_seeds_differ(self, population):
        a = CallArrivalProcess(population, seed=5).generate(days=1)
        b = CallArrivalProcess(population, seed=6).generate(days=1)
        assert a != b

    def test_volume_matches_rate(self, population):
        process = CallArrivalProcess(population, calls_per_user_day=4.0, seed=1)
        calls = process.generate(days=2)
        expected = len(population) * 4.0 * 2
        # Poisson: 4 sigma around the mean.
        assert abs(len(calls) - expected) < 4 * np.sqrt(expected)

    def test_spec_fields_well_formed(self, population):
        calls = CallArrivalProcess(population, seed=2).generate(days=2)
        assert [spec.call_id for spec in calls] == list(range(len(calls)))
        for spec in calls:
            assert spec.callee.user_id != spec.caller.user_id
            assert 0.0 <= spec.start_hour_cet < 24.0
            assert spec.day in (0, 1)
            assert spec.duration_s in DURATION_CHOICES_S

    def test_calls_sorted_by_start(self, population):
        calls = CallArrivalProcess(population, seed=2).generate(days=2)
        starts = [spec.day * 24.0 + spec.start_hour_cet for spec in calls]
        assert starts == sorted(starts)

    def test_multiparty_fraction_respected(self, population):
        process = CallArrivalProcess(
            population, calls_per_user_day=8.0, multiparty_fraction=0.3, seed=4
        )
        calls = process.generate(days=2)
        fraction = sum(spec.multiparty for spec in calls) / len(calls)
        assert fraction == pytest.approx(0.3, abs=0.07)

    def test_zero_multiparty(self, population):
        calls = CallArrivalProcess(
            population, multiparty_fraction=0.0, seed=4
        ).generate(days=1)
        assert not any(spec.multiparty for spec in calls)

    def test_callee_popularity_is_skewed(self, population):
        """Zipf callees: the busiest callee attracts far more than 1/N."""
        calls = CallArrivalProcess(
            population, calls_per_user_day=10.0, seed=9
        ).generate(days=1)
        counts: dict[int, int] = {}
        for spec in calls:
            counts[spec.callee.user_id] = counts.get(spec.callee.user_id, 0) + 1
        top_share = max(counts.values()) / len(calls)
        assert top_share > 3.0 / len(population)


class TestDiurnalShape:
    def test_hourly_rates_normalised(self, population):
        process = CallArrivalProcess(population, calls_per_user_day=4.0, seed=1)
        region = next(iter(population.by_region()))
        n_users = len(population.users_in_region(region))
        rates = process._hourly_rates(region, n_users)
        assert rates.shape == (24,)
        assert rates.sum() == pytest.approx(n_users * 4.0)

    def test_rates_swing_with_the_clock(self, population):
        """Business hours carry several times the night-floor rate."""
        process = CallArrivalProcess(population, seed=1)
        region = next(iter(population.by_region()))
        rates = process._hourly_rates(region, 100)
        assert rates.max() > 2.0 * rates.min()

    def test_profile_region_specific(self):
        from repro.geo.regions import WorldRegion

        profiles = {
            region: call_rate_profile(region).amplitude for region in WorldRegion
        }
        assert len(set(profiles.values())) > 1


class TestValidation:
    def test_too_small_population(self, small_world):
        lone = UserPopulation.sample(small_world.topology, 1, seed=1)
        with pytest.raises(ValueError):
            CallArrivalProcess(lone)

    def test_bad_rate_and_fraction(self, population):
        with pytest.raises(ValueError):
            CallArrivalProcess(population, calls_per_user_day=0.0)
        with pytest.raises(ValueError):
            CallArrivalProcess(population, multiparty_fraction=1.5)

    def test_bad_days(self, population):
        with pytest.raises(ValueError):
            CallArrivalProcess(population, seed=1).generate(days=0)
