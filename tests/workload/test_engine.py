"""Tests for the batched campaign engine."""

import numpy as np
import pytest

from repro.dataplane.transmit import simulate_stream
from repro.workload.arrivals import CallArrivalProcess, CallSpec
from repro.workload.engine import CampaignConfig, CampaignEngine
from repro.workload.population import UserPopulation


@pytest.fixture(scope="module")
def campaign_inputs(small_world):
    population = UserPopulation.sample(small_world.topology, 80, seed=31)
    calls = CallArrivalProcess(
        population, calls_per_user_day=3.0, seed=31
    ).generate(days=1)
    return population, calls


class TestDeterminism:
    def test_same_seed_same_report(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        run_a = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        run_b = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        assert run_a.report.to_json() == run_b.report.to_json()

    def test_different_seed_different_report(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        run_a = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        run_b = CampaignEngine(small_world.service, CampaignConfig(seed=9)).run(calls)
        assert run_a.report.to_json() != run_b.report.to_json()


class TestAccounting:
    def test_stats_add_up(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        run = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        stats = run.stats
        assert stats.calls_total == len(calls)
        assert stats.calls_resolved + stats.calls_failed == stats.calls_total
        assert len(run.results) == stats.calls_resolved
        assert run.report.n_calls == stats.calls_resolved
        assert stats.batches <= stats.calls_resolved
        assert stats.largest_batch >= 1
        assert stats.elapsed_s > 0
        assert stats.calls_per_second > 0

    def test_path_cache_gets_hits(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        run = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        assert run.stats.onward_misses > 0
        assert run.stats.onward_hits > 0
        assert 0.0 < run.stats.onward_hit_rate <= 1.0

    def test_turn_allocations_follow_multiparty(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        engine = CampaignEngine(small_world.service, CampaignConfig(seed=8))
        run = engine.run(calls)
        multiparty = sum(
            1 for result in run.results if result.spec.multiparty
        )
        assert run.stats.turn_allocations == multiparty
        assert sum(engine.turn.requests_by_pop().values()) == multiparty


class TestPathFidelity:
    def test_matches_service_call_paths(self, small_world, campaign_inputs):
        """Cached resolution must agree with the uncached facade."""
        _, calls = campaign_inputs
        run = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        service = small_world.service
        for result in run.results[:25]:
            spec = result.spec
            reference = service.call_paths(
                spec.caller.prefix,
                spec.caller.location,
                spec.callee.prefix,
                spec.callee.location,
            )
            assert reference is not None
            assert result.entry_pop == reference.entry_pop
            assert result.egress_pop == reference.exit_pop
            assert result.via_vns.rtt_ms == pytest.approx(
                reference.via_vns.rtt_ms()
            )
            assert result.via_internet.rtt_ms == pytest.approx(
                reference.via_internet.rtt_ms()
            )


class TestBatchedConsistency:
    def test_batch_matches_scalar_distribution(self, small_world, campaign_inputs):
        """One big batch must be statistically consistent with a loop of
        scalar ``simulate_stream`` calls over the same path."""
        population, _ = campaign_inputs
        caller, callee = population.users[0], population.users[1]
        n = 256
        calls = [
            CallSpec(
                call_id=i,
                caller=caller,
                callee=callee,
                day=0,
                start_hour_cet=12.25,
                duration_s=120.0,
                multiparty=False,
            )
            for i in range(n)
        ]
        engine = CampaignEngine(small_world.service, CampaignConfig(seed=8))
        run = engine.run(calls)
        assert run.stats.batches == 1  # identical signatures -> one group
        assert run.stats.largest_batch == n
        pair = engine.resolve_pair(caller.prefix, callee.prefix)
        assert pair is not None

        rng = np.random.default_rng(123)
        scalar = [
            simulate_stream(pair.via_vns, hour_cet=12.5, rng=rng) for _ in range(n)
        ]
        scalar_loss = np.array([s.loss_percent for s in scalar])
        batch_loss = np.array([r.via_vns.loss_percent for r in run.results])
        # Means within 4 combined standard errors of each other.
        stderr = np.sqrt(
            scalar_loss.var() / len(scalar_loss) + batch_loss.var() / len(batch_loss)
        )
        assert abs(scalar_loss.mean() - batch_loss.mean()) < 4 * max(stderr, 1e-9)

        scalar_jitter = np.array([s.jitter_p95_ms for s in scalar])
        batch_jitter = np.array([r.via_vns.jitter_p95_ms for r in run.results])
        jitter_stderr = np.sqrt(
            scalar_jitter.var() / len(scalar_jitter)
            + batch_jitter.var() / len(batch_jitter)
        )
        assert abs(scalar_jitter.mean() - batch_jitter.mean()) < 4 * max(
            jitter_stderr, 1e-9
        )

    def test_hour_binning_groups_within_hour(self, small_world, campaign_inputs):
        """Calls in the same hour bin share one batch; different hours don't."""
        population, _ = campaign_inputs
        caller, callee = population.users[0], population.users[1]
        calls = [
            CallSpec(0, caller, callee, 0, 9.1, 120.0, False),
            CallSpec(1, caller, callee, 0, 9.9, 120.0, False),
            CallSpec(2, caller, callee, 0, 10.1, 120.0, False),
        ]
        run = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        assert run.stats.batches == 2  # {hour 9: 2 calls}, {hour 10: 1 call}
        assert run.stats.largest_batch == 2
