"""Tests for the batched campaign engine."""

import numpy as np
import pytest

from repro import perf
from repro.dataplane.transmit import simulate_stream
from repro.workload.arrivals import CallArrivalProcess, CallSpec
from repro.workload.engine import CampaignConfig, CampaignEngine, CampaignStats
from repro.workload.population import UserPopulation


@pytest.fixture(scope="module")
def campaign_inputs(small_world):
    population = UserPopulation.sample(small_world.topology, 80, seed=31)
    calls = CallArrivalProcess(
        population, calls_per_user_day=3.0, seed=31
    ).generate(days=1)
    return population, calls


class TestDeterminism:
    def test_same_seed_same_report(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        run_a = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        run_b = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        assert run_a.report.to_json() == run_b.report.to_json()

    def test_different_seed_different_report(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        run_a = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        run_b = CampaignEngine(small_world.service, CampaignConfig(seed=9)).run(calls)
        assert run_a.report.to_json() != run_b.report.to_json()


class TestAccounting:
    def test_stats_add_up(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        run = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        stats = run.stats
        assert stats.calls_total == len(calls)
        assert stats.calls_resolved + stats.calls_failed == stats.calls_total
        assert len(run.results) == stats.calls_resolved
        assert run.report.n_calls == stats.calls_resolved
        assert stats.batches <= stats.calls_resolved
        assert stats.largest_batch >= 1
        assert stats.elapsed_s > 0
        assert stats.calls_per_second > 0

    def test_path_cache_gets_hits(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        run = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        assert run.stats.onward_misses > 0
        assert run.stats.onward_hits > 0
        assert 0.0 < run.stats.onward_hit_rate <= 1.0

    def test_turn_allocations_follow_multiparty(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        engine = CampaignEngine(small_world.service, CampaignConfig(seed=8))
        run = engine.run(calls)
        multiparty = sum(
            1 for result in run.results if result.spec.multiparty
        )
        assert run.stats.turn_allocations == multiparty
        assert sum(engine.turn.requests_by_pop().values()) == multiparty


class TestPathFidelity:
    def test_matches_service_call_paths(self, small_world, campaign_inputs):
        """Cached resolution must agree with the uncached facade."""
        _, calls = campaign_inputs
        run = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        service = small_world.service
        for result in run.results[:25]:
            spec = result.spec
            reference = service.call_paths(
                spec.caller.prefix,
                spec.caller.location,
                spec.callee.prefix,
                spec.callee.location,
            )
            assert reference is not None
            assert result.entry_pop == reference.entry_pop
            assert result.egress_pop == reference.exit_pop
            assert result.via_vns.rtt_ms == pytest.approx(
                reference.via_vns.rtt_ms()
            )
            assert result.via_internet.rtt_ms == pytest.approx(
                reference.via_internet.rtt_ms()
            )


class TestBatchedConsistency:
    def test_batch_matches_scalar_distribution(self, small_world, campaign_inputs):
        """One big batch must be statistically consistent with a loop of
        scalar ``simulate_stream`` calls over the same path."""
        population, _ = campaign_inputs
        caller, callee = population.users[0], population.users[1]
        n = 256
        calls = [
            CallSpec(
                call_id=i,
                caller=caller,
                callee=callee,
                day=0,
                start_hour_cet=12.25,
                duration_s=120.0,
                multiparty=False,
            )
            for i in range(n)
        ]
        engine = CampaignEngine(small_world.service, CampaignConfig(seed=8))
        run = engine.run(calls)
        assert run.stats.batches == 1  # identical signatures -> one group
        assert run.stats.largest_batch == n
        pair = engine.resolve_pair(caller.prefix, callee.prefix)
        assert pair is not None

        rng = np.random.default_rng(123)
        scalar = [
            simulate_stream(pair.via_vns, hour_cet=12.5, rng=rng) for _ in range(n)
        ]
        scalar_loss = np.array([s.loss_percent for s in scalar])
        batch_loss = np.array([r.via_vns.loss_percent for r in run.results])
        # Means within 4 combined standard errors of each other.
        stderr = np.sqrt(
            scalar_loss.var() / len(scalar_loss) + batch_loss.var() / len(batch_loss)
        )
        assert abs(scalar_loss.mean() - batch_loss.mean()) < 4 * max(stderr, 1e-9)

        scalar_jitter = np.array([s.jitter_p95_ms for s in scalar])
        batch_jitter = np.array([r.via_vns.jitter_p95_ms for r in run.results])
        jitter_stderr = np.sqrt(
            scalar_jitter.var() / len(scalar_jitter)
            + batch_jitter.var() / len(batch_jitter)
        )
        assert abs(scalar_jitter.mean() - batch_jitter.mean()) < 4 * max(
            jitter_stderr, 1e-9
        )

    def test_hour_binning_groups_within_hour(self, small_world, campaign_inputs):
        """Calls in the same hour bin share one batch; different hours don't."""
        population, _ = campaign_inputs
        caller, callee = population.users[0], population.users[1]
        calls = [
            CallSpec(0, caller, callee, 0, 9.1, 120.0, False),
            CallSpec(1, caller, callee, 0, 9.9, 120.0, False),
            CallSpec(2, caller, callee, 0, 10.1, 120.0, False),
        ]
        run = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        assert run.stats.batches == 2  # {hour 9: 2 calls}, {hour 10: 1 call}
        assert run.stats.largest_batch == 2


class TestResolveAccounting:
    """The pair cache re-counts exactly the legs the original miss consulted."""

    def make_engine(self, small_world):
        return CampaignEngine(small_world.service, CampaignConfig(seed=8))

    def test_successful_pair_counts_both_legs_once(self, small_world, campaign_inputs):
        population, _ = campaign_inputs
        caller, callee = population.users[0], population.users[1]
        engine = self.make_engine(small_world)
        first = CampaignStats()
        pair = engine.resolve_pair(caller.prefix, callee.prefix, first)
        assert pair is not None
        assert (first.onward_hits, first.onward_misses) == (0, 1)
        assert (first.internet_hits, first.internet_misses) == (0, 1)
        again = CampaignStats()
        assert engine.resolve_pair(caller.prefix, callee.prefix, again) is pair
        assert (again.onward_hits, again.onward_misses) == (1, 0)
        assert (again.internet_hits, again.internet_misses) == (1, 0)

    def test_entry_failure_counts_no_leg_lookups(self, small_world, campaign_inputs):
        population, _ = campaign_inputs
        caller, callee = population.users[2], population.users[3]
        engine = self.make_engine(small_world)
        # Make the caller unservable: no anycast entry PoP.
        engine._entry[caller.prefix] = None
        for _ in range(2):  # miss, then the cached failure
            stats = CampaignStats()
            assert engine.resolve_pair(caller.prefix, callee.prefix, stats) is None
            assert (stats.onward_hits, stats.onward_misses) == (0, 0)
            assert (stats.internet_hits, stats.internet_misses) == (0, 0)

    def test_onward_failure_never_counts_internet(self, small_world, campaign_inputs):
        population, _ = campaign_inputs
        caller, callee = population.users[4], population.users[5]
        engine = self.make_engine(small_world)
        entry = engine._entry_pop(caller.prefix)
        assert entry is not None
        # Make the onward leg unroutable (cached negative resolution).
        engine._onward[(entry, callee.prefix)] = None
        for _ in range(2):  # via the onward cache, then via the pair cache
            stats = CampaignStats()
            assert engine.resolve_pair(caller.prefix, callee.prefix, stats) is None
            assert (stats.onward_hits, stats.onward_misses) == (1, 0)
            assert (stats.internet_hits, stats.internet_misses) == (0, 0)

    def test_internet_cache_counted_in_campaign(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        run = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
        stats = run.stats
        assert stats.internet_misses > 0
        assert stats.internet_hits > 0
        # Every resolved call consulted (or re-counted) each leg exactly once.
        assert stats.internet_hits + stats.internet_misses <= stats.calls_total
        snapshot = stats.to_snapshot().counters
        assert snapshot["workload.stats.internet_hits"] == stats.internet_hits
        assert snapshot["workload.stats.internet_misses"] == stats.internet_misses

    def test_internet_cache_perf_counters(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        perf.reset()
        perf.enable()
        try:
            run = CampaignEngine(small_world.service, CampaignConfig(seed=8)).run(calls)
            counters = perf.snapshot()["counters"]
        finally:
            perf.disable()
            perf.reset()
        assert counters["workload.cache.internet_hit"] == run.stats.internet_hits
        assert counters["workload.cache.internet_miss"] == run.stats.internet_misses
        assert counters["workload.cache.onward_hit"] == run.stats.onward_hits
        assert counters["workload.cache.onward_miss"] == run.stats.onward_misses


class TestKernels:
    def test_default_kernel_is_columnar(self):
        assert CampaignConfig().kernel == "columnar"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            CampaignConfig(kernel="scalar")

    def test_grouped_kernel_deterministic(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        config = CampaignConfig(seed=8, kernel="grouped")
        run_a = CampaignEngine(small_world.service, config).run(calls)
        run_b = CampaignEngine(small_world.service, config).run(calls)
        assert run_a.report.to_json() == run_b.report.to_json()

    def test_kernels_agree_on_everything_but_draws(self, small_world, campaign_inputs):
        """Same resolution, grouping and packet accounting either way."""
        _, calls = campaign_inputs
        col = CampaignEngine(
            small_world.service, CampaignConfig(seed=8, kernel="columnar")
        ).run(calls)
        grp = CampaignEngine(
            small_world.service, CampaignConfig(seed=8, kernel="grouped")
        ).run(calls)
        assert col.stats.calls_resolved == grp.stats.calls_resolved
        assert col.stats.batches == grp.stats.batches
        assert col.stats.largest_batch == grp.stats.largest_batch
        for a, b in zip(col.results, grp.results):
            assert a.spec.call_id == b.spec.call_id
            assert a.entry_pop == b.entry_pop
            assert a.egress_pop == b.egress_pop
            assert a.via_vns.rtt_ms == b.via_vns.rtt_ms
            assert a.via_internet.rtt_ms == b.via_internet.rtt_ms
            assert a.via_vns.packets_sent == b.via_vns.packets_sent
            assert a.via_vns.n_slots == b.via_vns.n_slots

    def test_kernels_agree_in_distribution(self, small_world, campaign_inputs):
        """Columnar and grouped draws are distribution-identical."""
        population, _ = campaign_inputs
        caller, callee = population.users[0], population.users[1]
        n = 256
        calls = [
            CallSpec(i, caller, callee, 0, 12.25, 120.0, False) for i in range(n)
        ]
        runs = {
            kernel: CampaignEngine(
                small_world.service, CampaignConfig(seed=8, kernel=kernel)
            ).run(calls)
            for kernel in ("columnar", "grouped")
        }
        for metric in (
            lambda r: r.via_vns.loss_percent,
            lambda r: r.via_internet.loss_percent,
            lambda r: r.via_vns.jitter_p95_ms,
        ):
            col = np.array([metric(r) for r in runs["columnar"].results])
            grp = np.array([metric(r) for r in runs["grouped"].results])
            stderr = np.sqrt(col.var() / col.size + grp.var() / grp.size)
            assert abs(col.mean() - grp.mean()) < 4 * max(stderr, 1e-9)
