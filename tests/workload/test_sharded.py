"""Tests for sharded multi-process campaign execution.

The load-bearing property is the determinism contract: a sharded run —
in-process or across a real spawn pool, with or without retries — is
byte-identical in ``CampaignReport.to_json()`` to the sequential engine
under the same seed.
"""

import pickle

import pytest

from repro import perf
from repro.workload import (
    CallArrivalProcess,
    CampaignConfig,
    CampaignEngine,
    ShardedCampaignRunner,
    ShardExecutionError,
    ShardPlan,
    UserPopulation,
    group_key,
    partition_calls,
    shard_seed,
)


@pytest.fixture(scope="module")
def campaign_inputs(small_world):
    population = UserPopulation.sample(small_world.topology, 60, seed=11)
    calls = CallArrivalProcess(
        population, calls_per_user_day=2.0, multiparty_fraction=0.25, seed=12
    ).generate(days=1)
    return population, calls


@pytest.fixture(scope="module")
def sequential_json(small_world, campaign_inputs):
    _, calls = campaign_inputs
    run = CampaignEngine(small_world.service, CampaignConfig(seed=7)).run(calls)
    return run.report.to_json()


class TestPartition:
    def test_preserves_all_calls_and_order(self, campaign_inputs):
        _, calls = campaign_inputs
        shards = partition_calls(calls, 4)
        assert sum(len(s) for s in shards) == len(calls)
        positions = {spec.call_id: i for i, spec in enumerate(calls)}
        for shard in shards:
            assert shard  # never empty
            indices = [positions[spec.call_id] for spec in shard]
            assert indices == sorted(indices)
        seen = [spec.call_id for shard in shards for spec in shard]
        assert sorted(seen) == sorted(spec.call_id for spec in calls)

    def test_never_splits_a_group(self, campaign_inputs):
        _, calls = campaign_inputs
        shards = partition_calls(calls, 5)
        owner: dict = {}
        for index, shard in enumerate(shards):
            for spec in shard:
                key = group_key(spec)
                assert owner.setdefault(key, index) == index

    def test_deterministic(self, campaign_inputs):
        _, calls = campaign_inputs
        first = partition_calls(calls, 3)
        second = partition_calls(calls, 3)
        assert [[s.call_id for s in shard] for shard in first] == [
            [s.call_id for s in shard] for shard in second
        ]

    def test_degenerate_inputs(self, campaign_inputs):
        _, calls = campaign_inputs
        assert partition_calls([], 4) == []
        assert partition_calls(calls, 1) == [list(calls)]
        only = [calls[0]]
        assert partition_calls(only, 8) == [only]

    def test_shard_seed_is_stable_and_attempt_sensitive(self):
        assert shard_seed(7, 0) == shard_seed(7, 0)
        assert shard_seed(7, 0) != shard_seed(7, 1)
        assert shard_seed(7, 0, attempt=0) != shard_seed(7, 0, attempt=1)
        assert shard_seed(8, 0) != shard_seed(7, 0)


class TestPlanValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="n_workers"):
            ShardPlan(n_workers=0)
        with pytest.raises(ValueError, match="n_shards"):
            ShardPlan(n_shards=0)
        with pytest.raises(ValueError, match="world_transport"):
            ShardPlan(world_transport="carrier-pigeon")
        with pytest.raises(ValueError, match="max_retries"):
            ShardPlan(max_retries=-1)

    def test_runner_requires_world_source(self, small_world):
        with pytest.raises(ValueError, match="service"):
            ShardedCampaignRunner(None, CampaignConfig())
        with pytest.raises(ValueError, match="world_spec"):
            ShardedCampaignRunner(
                small_world.service,
                CampaignConfig(),
                ShardPlan(world_transport="rebuild"),
            )


class TestInProcessEquivalence:
    def test_byte_identical_report(
        self, small_world, campaign_inputs, sequential_json
    ):
        _, calls = campaign_inputs
        for n_shards in (2, 3, 5):
            run = ShardedCampaignRunner(
                small_world.service,
                CampaignConfig(seed=7),
                ShardPlan(force_inprocess=True, n_shards=n_shards),
            ).run(calls)
            assert run.report.to_json() == sequential_json
            assert all(outcome.in_process for outcome in run.shards)

    def test_results_merge_complete_and_sorted(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        run = ShardedCampaignRunner(
            small_world.service,
            CampaignConfig(seed=7),
            ShardPlan(force_inprocess=True, n_shards=3),
        ).run(calls)
        ids = [result.spec.call_id for result in run.results]
        assert ids == sorted(ids)
        assert len(ids) == run.stats.calls_resolved

    def test_keep_results_off_keeps_report(
        self, small_world, campaign_inputs, sequential_json
    ):
        _, calls = campaign_inputs
        run = ShardedCampaignRunner(
            small_world.service,
            CampaignConfig(seed=7),
            ShardPlan(force_inprocess=True, n_shards=2, keep_results=False),
        ).run(calls)
        assert run.results == []
        assert run.report.to_json() == sequential_json

    def test_does_not_leak_perf_state(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        perf.disable()
        perf.reset()
        run = ShardedCampaignRunner(
            small_world.service,
            CampaignConfig(seed=7),
            ShardPlan(force_inprocess=True, n_shards=2),
        ).run(calls)
        assert not perf.is_enabled()
        assert perf.snapshot().timers == {}
        # ... yet the run still captured its own phase timings.
        assert run.shards[0].phase_s["simulate"]["total_s"] > 0.0
        assert run.perf_snapshot.timers


class TestRetryAndFallback:
    def test_injected_fault_is_retried(
        self, small_world, campaign_inputs, sequential_json
    ):
        _, calls = campaign_inputs
        run = ShardedCampaignRunner(
            small_world.service,
            CampaignConfig(seed=7),
            ShardPlan(
                force_inprocess=True,
                n_shards=2,
                fail_injections=((0, 1),),
                max_retries=2,
            ),
        ).run(calls)
        shard0 = next(o for o in run.shards if o.index == 0)
        assert shard0.attempts == 2
        assert "injected shard fault" in shard0.failures[0]
        assert run.report.to_json() == sequential_json

    def test_exhausted_retries_raise(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        with pytest.raises(ShardExecutionError, match="shard 0 failed permanently"):
            ShardedCampaignRunner(
                small_world.service,
                CampaignConfig(seed=7),
                ShardPlan(
                    force_inprocess=True,
                    n_shards=2,
                    fail_injections=((0, 99),),
                    max_retries=1,
                ),
            ).run(calls)


class TestPickledWorldRoundTrip:
    def test_service_round_trips_and_reproduces(
        self, small_world, campaign_inputs, sequential_json
    ):
        _, calls = campaign_inputs
        clone = pickle.loads(
            pickle.dumps(small_world.service, protocol=pickle.HIGHEST_PROTOCOL)
        )
        run = CampaignEngine(clone, CampaignConfig(seed=7)).run(calls)
        assert run.report.to_json() == sequential_json


@pytest.mark.slow
class TestSpawnPool:
    """One real 2-worker spawn pool run (the CI smoke's tier-1 twin).

    Exercises the deprecated per-run pool path: no explicit
    :class:`CampaignWorkerPool`, so the runner builds (and warns about)
    an ephemeral one.  Shards stream — the default plan cuts
    ``2 × workers`` slices.
    """

    def test_pool_run_byte_identical(
        self, small_world, campaign_inputs, sequential_json
    ):
        _, calls = campaign_inputs
        # n_shards pinned to 4: the auto 2x-workers streaming default
        # clamps back to one slice per worker for a campaign this small.
        runner = ShardedCampaignRunner(
            small_world.service,
            CampaignConfig(seed=7),
            ShardPlan(n_workers=2, n_shards=4),
        )
        with pytest.warns(DeprecationWarning, match="per run is deprecated"):
            run = runner.run(calls)
        assert len(run.shards) == 4  # streaming: more shards than workers
        assert all(not outcome.in_process for outcome in run.shards)
        assert run.report.to_json() == sequential_json
        assert run.simulate_critical_path_s(cpu=True) > 0.0
        # Fan-out overheads are attributed, not hidden: every pooled
        # shard reports its queue wait, each worker its world ship and
        # warmup once.
        assert all("queue_wait_s" in o.phase_s for o in run.shards)
        shipped = [o for o in run.shards if "world_ship_s" in o.phase_s]
        assert 1 <= len(shipped) <= 2
        assert all("warmup_s" in o.phase_s for o in shipped)
        assert run.overhead_s("world_ship_s") > 0.0
        assert "workload.pool.queue_wait" in run.perf_snapshot.timers
        assert run.pool_stats is not None
        assert run.pool_stats.world_transport == "frozen"
        assert run.pool_stats.world_bytes > 0


@pytest.mark.slow
class TestPersistentPool:
    """Pool lifecycle: reuse, chaos salvage, clean shutdown."""

    def test_reuse_across_runs_and_salvage(
        self, small_world, campaign_inputs, sequential_json
    ):
        from repro.workload import CampaignWorkerPool

        _, calls = campaign_inputs
        with CampaignWorkerPool(small_world.service, workers=2) as pool:
            plan = ShardPlan(n_workers=2)
            first = ShardedCampaignRunner(
                small_world.service, CampaignConfig(seed=7), plan, pool=pool
            ).run(calls)
            assert first.report.to_json() == sequential_json
            dumped_once = pool.stats.world_dump_s
            # Second campaign through the same (already-warm) pool: no
            # respawn, no second world dump, byte-identical again.  Each
            # worker reports its (one-time) ship cost at most once across
            # all runs it serves.
            second = ShardedCampaignRunner(
                small_world.service, CampaignConfig(seed=7), plan, pool=pool
            ).run(calls)
            assert second.report.to_json() == sequential_json
            assert pool.stats.world_dump_s == dumped_once
            ship_reports = sum(
                1
                for run in (first, second)
                for outcome in run.shards
                if "world_ship_s" in outcome.phase_s
            )
            assert ship_reports <= 2
            assert pool.stats.runs == 2
            # Chaos: injected faults exhaust the pool's retry budget and
            # the shard still salvages in-process, report intact.
            chaos = ShardedCampaignRunner(
                small_world.service,
                CampaignConfig(seed=7),
                ShardPlan(n_workers=2, fail_injections=((0, 2),), max_retries=1),
                pool=pool,
            ).run(calls)
            shard0 = next(o for o in chaos.shards if o.index == 0)
            assert shard0.in_process
            assert shard0.attempts >= 2
            assert any("injected shard fault" in f for f in shard0.failures)
            assert chaos.report.to_json() == sequential_json
        assert pool.closed

    def test_context_manager_shuts_down_on_exception(self, small_world):
        from repro.workload import CampaignWorkerPool

        pool = CampaignWorkerPool(small_world.service, workers=2)
        with pytest.raises(RuntimeError, match="boom"):
            with pool:
                raise RuntimeError("boom")
        assert pool.closed
        with pytest.raises(RuntimeError, match="shut down"):
            pool.start()


class TestCheckpointResume:
    def test_resume_skips_completed_and_reproduces_report(
        self, small_world, campaign_inputs, sequential_json, tmp_path
    ):
        _, calls = campaign_inputs
        plan = ShardPlan(
            force_inprocess=True, n_shards=3, checkpoint_dir=str(tmp_path)
        )

        def run_once():
            return ShardedCampaignRunner(
                small_world.service, CampaignConfig(seed=7), plan
            ).run(calls)

        first = run_once()
        assert first.report.to_json() == sequential_json
        assert not any(outcome.resumed for outcome in first.shards)
        saved = sorted(tmp_path.glob("shard-*.pkl"))
        assert len(saved) == 3
        # Rerun: every shard restores from its checkpoint.
        resumed = run_once()
        assert all(outcome.resumed for outcome in resumed.shards)
        assert resumed.report.to_json() == sequential_json
        # Partial resume: drop one shard's file, only it re-executes.
        saved[1].unlink()
        partial = run_once()
        assert sum(not outcome.resumed for outcome in partial.shards) == 1
        assert partial.report.to_json() == sequential_json

    def test_different_campaign_ignores_checkpoints(
        self, small_world, campaign_inputs, tmp_path
    ):
        _, calls = campaign_inputs
        plan = ShardPlan(
            force_inprocess=True, n_shards=2, checkpoint_dir=str(tmp_path)
        )
        ShardedCampaignRunner(
            small_world.service, CampaignConfig(seed=7), plan
        ).run(calls)
        other = ShardedCampaignRunner(
            small_world.service, CampaignConfig(seed=8), plan
        ).run(calls)
        assert not any(outcome.resumed for outcome in other.shards)


class TestCostBalance:
    def test_predicted_costs_are_balanced(self, campaign_inputs):
        from repro.workload import predicted_shard_cost

        _, calls = campaign_inputs
        for n_shards in (2, 4):
            shards = partition_calls(calls, n_shards)
            costs = [predicted_shard_cost(shard) for shard in shards]
            assert min(costs) > 0.0
            assert max(costs) / min(costs) <= 1.3


class TestWarmupManifest:
    def test_manifest_is_unique_sorted_and_warmable(
        self, small_world, campaign_inputs, sequential_json
    ):
        from repro.workload import warmup_manifest

        _, calls = campaign_inputs
        manifest = warmup_manifest(calls)
        keys = [(str(a), str(b)) for a, b in manifest]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)
        # Warming an engine changes nothing about its report.
        engine = CampaignEngine(small_world.service, CampaignConfig(seed=7))
        assert engine.warm_pairs(manifest) > 0
        assert engine.run(calls).report.to_json() == sequential_json


class TestKernelByteIdentity:
    """Sequential-vs-sharded byte identity holds under either kernel.

    The fixtures above already exercise the default (columnar) kernel;
    this pins the contract for both explicitly — the columnar kernel's
    counter-based draws and the grouped kernel's per-group generators
    each make results independent of the sharding.
    """

    @pytest.mark.parametrize("kernel", ["columnar", "grouped"])
    def test_byte_identical_report_per_kernel(
        self, small_world, campaign_inputs, kernel
    ):
        _, calls = campaign_inputs
        config = CampaignConfig(seed=7, kernel=kernel)
        sequential = (
            CampaignEngine(small_world.service, config).run(calls).report.to_json()
        )
        sharded = ShardedCampaignRunner(
            small_world.service,
            config,
            ShardPlan(force_inprocess=True, n_shards=3),
        ).run(calls)
        assert sharded.report.to_json() == sequential
