"""Tests for sharded multi-process campaign execution.

The load-bearing property is the determinism contract: a sharded run —
in-process or across a real spawn pool, with or without retries — is
byte-identical in ``CampaignReport.to_json()`` to the sequential engine
under the same seed.
"""

import pickle

import pytest

from repro import perf
from repro.workload import (
    CallArrivalProcess,
    CampaignConfig,
    CampaignEngine,
    ShardedCampaignRunner,
    ShardExecutionError,
    ShardPlan,
    UserPopulation,
    group_key,
    partition_calls,
    shard_seed,
)


@pytest.fixture(scope="module")
def campaign_inputs(small_world):
    population = UserPopulation.sample(small_world.topology, 60, seed=11)
    calls = CallArrivalProcess(
        population, calls_per_user_day=2.0, multiparty_fraction=0.25, seed=12
    ).generate(days=1)
    return population, calls


@pytest.fixture(scope="module")
def sequential_json(small_world, campaign_inputs):
    _, calls = campaign_inputs
    run = CampaignEngine(small_world.service, CampaignConfig(seed=7)).run(calls)
    return run.report.to_json()


class TestPartition:
    def test_preserves_all_calls_and_order(self, campaign_inputs):
        _, calls = campaign_inputs
        shards = partition_calls(calls, 4)
        assert sum(len(s) for s in shards) == len(calls)
        positions = {spec.call_id: i for i, spec in enumerate(calls)}
        for shard in shards:
            assert shard  # never empty
            indices = [positions[spec.call_id] for spec in shard]
            assert indices == sorted(indices)
        seen = [spec.call_id for shard in shards for spec in shard]
        assert sorted(seen) == sorted(spec.call_id for spec in calls)

    def test_never_splits_a_group(self, campaign_inputs):
        _, calls = campaign_inputs
        shards = partition_calls(calls, 5)
        owner: dict = {}
        for index, shard in enumerate(shards):
            for spec in shard:
                key = group_key(spec)
                assert owner.setdefault(key, index) == index

    def test_deterministic(self, campaign_inputs):
        _, calls = campaign_inputs
        first = partition_calls(calls, 3)
        second = partition_calls(calls, 3)
        assert [[s.call_id for s in shard] for shard in first] == [
            [s.call_id for s in shard] for shard in second
        ]

    def test_degenerate_inputs(self, campaign_inputs):
        _, calls = campaign_inputs
        assert partition_calls([], 4) == []
        assert partition_calls(calls, 1) == [list(calls)]
        only = [calls[0]]
        assert partition_calls(only, 8) == [only]

    def test_shard_seed_is_stable_and_attempt_sensitive(self):
        assert shard_seed(7, 0) == shard_seed(7, 0)
        assert shard_seed(7, 0) != shard_seed(7, 1)
        assert shard_seed(7, 0, attempt=0) != shard_seed(7, 0, attempt=1)
        assert shard_seed(8, 0) != shard_seed(7, 0)


class TestPlanValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="n_workers"):
            ShardPlan(n_workers=0)
        with pytest.raises(ValueError, match="n_shards"):
            ShardPlan(n_shards=0)
        with pytest.raises(ValueError, match="world_transport"):
            ShardPlan(world_transport="carrier-pigeon")
        with pytest.raises(ValueError, match="max_retries"):
            ShardPlan(max_retries=-1)

    def test_runner_requires_world_source(self, small_world):
        with pytest.raises(ValueError, match="service"):
            ShardedCampaignRunner(None, CampaignConfig())
        with pytest.raises(ValueError, match="world_spec"):
            ShardedCampaignRunner(
                small_world.service,
                CampaignConfig(),
                ShardPlan(world_transport="rebuild"),
            )


class TestInProcessEquivalence:
    def test_byte_identical_report(
        self, small_world, campaign_inputs, sequential_json
    ):
        _, calls = campaign_inputs
        for n_shards in (2, 3, 5):
            run = ShardedCampaignRunner(
                small_world.service,
                CampaignConfig(seed=7),
                ShardPlan(force_inprocess=True, n_shards=n_shards),
            ).run(calls)
            assert run.report.to_json() == sequential_json
            assert all(outcome.in_process for outcome in run.shards)

    def test_results_merge_complete_and_sorted(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        run = ShardedCampaignRunner(
            small_world.service,
            CampaignConfig(seed=7),
            ShardPlan(force_inprocess=True, n_shards=3),
        ).run(calls)
        ids = [result.spec.call_id for result in run.results]
        assert ids == sorted(ids)
        assert len(ids) == run.stats.calls_resolved

    def test_keep_results_off_keeps_report(
        self, small_world, campaign_inputs, sequential_json
    ):
        _, calls = campaign_inputs
        run = ShardedCampaignRunner(
            small_world.service,
            CampaignConfig(seed=7),
            ShardPlan(force_inprocess=True, n_shards=2, keep_results=False),
        ).run(calls)
        assert run.results == []
        assert run.report.to_json() == sequential_json

    def test_does_not_leak_perf_state(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        perf.disable()
        perf.reset()
        run = ShardedCampaignRunner(
            small_world.service,
            CampaignConfig(seed=7),
            ShardPlan(force_inprocess=True, n_shards=2),
        ).run(calls)
        assert not perf.is_enabled()
        assert perf.snapshot().timers == {}
        # ... yet the run still captured its own phase timings.
        assert run.shards[0].phase_s["simulate"]["total_s"] > 0.0
        assert run.perf_snapshot.timers


class TestRetryAndFallback:
    def test_injected_fault_is_retried(
        self, small_world, campaign_inputs, sequential_json
    ):
        _, calls = campaign_inputs
        run = ShardedCampaignRunner(
            small_world.service,
            CampaignConfig(seed=7),
            ShardPlan(
                force_inprocess=True,
                n_shards=2,
                fail_injections=((0, 1),),
                max_retries=2,
            ),
        ).run(calls)
        shard0 = next(o for o in run.shards if o.index == 0)
        assert shard0.attempts == 2
        assert "injected shard fault" in shard0.failures[0]
        assert run.report.to_json() == sequential_json

    def test_exhausted_retries_raise(self, small_world, campaign_inputs):
        _, calls = campaign_inputs
        with pytest.raises(ShardExecutionError, match="shard 0 failed permanently"):
            ShardedCampaignRunner(
                small_world.service,
                CampaignConfig(seed=7),
                ShardPlan(
                    force_inprocess=True,
                    n_shards=2,
                    fail_injections=((0, 99),),
                    max_retries=1,
                ),
            ).run(calls)


class TestPickledWorldRoundTrip:
    def test_service_round_trips_and_reproduces(
        self, small_world, campaign_inputs, sequential_json
    ):
        _, calls = campaign_inputs
        clone = pickle.loads(
            pickle.dumps(small_world.service, protocol=pickle.HIGHEST_PROTOCOL)
        )
        run = CampaignEngine(clone, CampaignConfig(seed=7)).run(calls)
        assert run.report.to_json() == sequential_json


@pytest.mark.slow
class TestSpawnPool:
    """One real 2-worker spawn pool run (the CI smoke's tier-1 twin)."""

    def test_pool_run_byte_identical(
        self, small_world, campaign_inputs, sequential_json
    ):
        _, calls = campaign_inputs
        run = ShardedCampaignRunner(
            small_world.service,
            CampaignConfig(seed=7),
            ShardPlan(n_workers=2),
        ).run(calls)
        assert [o.in_process for o in run.shards] == [False, False]
        assert run.report.to_json() == sequential_json
        assert run.simulate_critical_path_s(cpu=True) > 0.0


class TestKernelByteIdentity:
    """Sequential-vs-sharded byte identity holds under either kernel.

    The fixtures above already exercise the default (columnar) kernel;
    this pins the contract for both explicitly — the columnar kernel's
    counter-based draws and the grouped kernel's per-group generators
    each make results independent of the sharding.
    """

    @pytest.mark.parametrize("kernel", ["columnar", "grouped"])
    def test_byte_identical_report_per_kernel(
        self, small_world, campaign_inputs, kernel
    ):
        _, calls = campaign_inputs
        config = CampaignConfig(seed=7, kernel=kernel)
        sequential = (
            CampaignEngine(small_world.service, config).run(calls).report.to_json()
        )
        sharded = ShardedCampaignRunner(
            small_world.service,
            config,
            ShardPlan(force_inprocess=True, n_shards=3),
        ).run(calls)
        assert sharded.report.to_json() == sequential
