"""Tests for the sampled user population."""

import pytest

from repro.geo.regions import WorldRegion
from repro.workload.population import DEFAULT_REGION_WEIGHTS, UserPopulation


class TestSampling:
    def test_deterministic_under_seed(self, small_world):
        a = UserPopulation.sample(small_world.topology, 80, seed=11)
        b = UserPopulation.sample(small_world.topology, 80, seed=11)
        assert a.users == b.users

    def test_different_seeds_differ(self, small_world):
        a = UserPopulation.sample(small_world.topology, 80, seed=11)
        b = UserPopulation.sample(small_world.topology, 80, seed=12)
        assert a.users != b.users

    def test_user_fields_consistent(self, small_world):
        topology = small_world.topology
        population = UserPopulation.sample(topology, 40, seed=5)
        for user in population:
            assert topology.origin_of[user.prefix] == user.asn
            assert topology.prefix_location[user.prefix] == user.location

    def test_default_weights_cover_all_regions(self):
        assert set(DEFAULT_REGION_WEIGHTS) == set(WorldRegion)
        assert sum(DEFAULT_REGION_WEIGHTS.values()) == pytest.approx(1.0)

    def test_region_weights_respected(self, small_world):
        population = UserPopulation.sample(
            small_world.topology,
            50,
            seed=3,
            region_weights={WorldRegion.EUROPE: 1.0},
        )
        assert len(population) == 50
        assert all(user.region is WorldRegion.EUROPE for user in population)

    def test_dominant_weight_dominates(self, small_world):
        weights = {region: 0.01 for region in WorldRegion}
        weights[WorldRegion.ASIA_PACIFIC] = 10.0
        population = UserPopulation.sample(
            small_world.topology, 200, seed=3, region_weights=weights
        )
        counts = population.by_region()
        assert counts[WorldRegion.ASIA_PACIFIC] > 150

    def test_accessors(self, small_world):
        population = UserPopulation.sample(small_world.topology, 60, seed=9)
        counts = population.by_region()
        assert sum(counts.values()) == 60
        for region, count in counts.items():
            assert len(population.users_in_region(region)) == count
        assert population.prefixes() <= set(small_world.topology.prefixes())

    def test_invalid_inputs(self, small_world):
        with pytest.raises(ValueError):
            UserPopulation.sample(small_world.topology, 0, seed=1)
        with pytest.raises(ValueError):
            UserPopulation.sample(
                small_world.topology,
                10,
                seed=1,
                region_weights={region: 0.0 for region in WorldRegion},
            )
