"""The WorldSpec rename: new name canonical, old name warns one release."""

from __future__ import annotations

import pytest

import repro
from repro.scenarios.spec import WorldSpec as ScenarioWorldSpec
from repro.workload import ShardWorldTransportSpec
from repro.workload import sharded


class TestShardWorldTransportSpec:
    def test_new_name_is_exported(self):
        assert "ShardWorldTransportSpec" in repro.workload.__all__
        assert sharded.ShardWorldTransportSpec is ShardWorldTransportSpec

    def test_old_module_attribute_warns_and_aliases(self):
        with pytest.warns(DeprecationWarning, match="ShardWorldTransportSpec"):
            legacy = sharded.WorldSpec
        assert legacy is ShardWorldTransportSpec

    def test_old_package_attribute_warns_and_aliases(self):
        with pytest.warns(DeprecationWarning):
            legacy = repro.workload.WorldSpec
        assert legacy is ShardWorldTransportSpec

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            sharded.no_such_name


class TestCanonicalWorldSpec:
    def test_repro_worldspec_is_the_scenario_spec(self):
        assert repro.WorldSpec is ScenarioWorldSpec
        assert "WorldSpec" in repro.__all__

    def test_the_two_specs_are_distinct_types(self):
        assert repro.WorldSpec is not ShardWorldTransportSpec
