"""Property-based tests for the BGP decision process."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import AsPath, Origin, Route
from repro.bgp.decision import DecisionContext, best_route, decision_order
from repro.net.addressing import Prefix

PFX = Prefix.parse("203.0.113.0/24")


@st.composite
def routes(draw):
    path_length = draw(st.integers(min_value=1, max_value=5))
    as_path = AsPath(
        tuple(draw(st.integers(min_value=1, max_value=20)) for _ in range(path_length))
    )
    return Route(
        prefix=PFX,
        as_path=as_path,
        next_hop=draw(st.sampled_from(["n1", "n2", "n3"])),
        origin=draw(st.sampled_from(list(Origin))),
        med=draw(st.integers(min_value=0, max_value=100)),
        local_pref=draw(st.integers(min_value=50, max_value=500)),
        learned_from=draw(st.sampled_from(["p1", "p2", "p3", "p4"])),
        ebgp=draw(st.booleans()),
    )


CTX = DecisionContext(igp_metric=lambda nh: {"n1": 1.0, "n2": 5.0, "n3": 9.0}[nh])


class TestDecisionProperties:
    @given(st.lists(routes(), min_size=1, max_size=8))
    @settings(max_examples=300)
    def test_best_is_a_candidate(self, candidates):
        best = best_route(candidates, CTX)
        assert best in candidates

    @given(st.lists(routes(), min_size=1, max_size=8))
    @settings(max_examples=300)
    def test_order_invariance(self, candidates):
        """The selected route must not depend on candidate order."""
        forward = best_route(candidates, CTX)
        backward = best_route(list(reversed(candidates)), CTX)
        assert forward == backward

    @given(st.lists(routes(), min_size=1, max_size=8))
    def test_best_has_max_local_pref(self, candidates):
        best = best_route(candidates, CTX)
        assert best.local_pref == max(r.local_pref for r in candidates)

    @given(st.lists(routes(), min_size=1, max_size=8))
    def test_survivors_subset(self, candidates):
        survivors = decision_order(candidates, CTX)
        assert survivors
        assert set(id(r) for r in survivors) <= set(id(r) for r in candidates)

    @given(st.lists(routes(), min_size=2, max_size=8))
    @settings(max_examples=300)
    def test_removing_a_loser_keeps_best(self, candidates):
        """Independence of irrelevant alternatives: dropping a non-best
        candidate never changes the selection."""
        best = best_route(candidates, CTX)
        for i in range(len(candidates)):
            if candidates[i] == best:
                continue
            remaining = candidates[:i] + candidates[i + 1 :]
            assert best_route(remaining, CTX) == best
