"""Property-based tests for statistics and loss-model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.loss import GilbertElliottLoss
from repro.dataplane.transmit import combine_rates
from repro.measurement.stats import Cdf, Ccdf, fraction_at_most, fraction_exceeding

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=60
)


class TestCdfProperties:
    @given(samples)
    def test_cdf_monotone(self, values):
        cdf = Cdf.of(values)
        assert (np.diff(cdf.ps) >= -1e-12).all()

    @given(samples, st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_cdf_ccdf_complement(self, values, x):
        cdf = Cdf.of(values)
        ccdf = Ccdf.of(values)
        assert cdf.at(x) + ccdf.at(x) == 1.0

    @given(samples)
    def test_cdf_bounds(self, values):
        cdf = Cdf.of(values)
        assert cdf.at(min(values) - 1) == 0.0
        assert cdf.at(max(values)) == 1.0

    @given(samples, st.floats(min_value=0.01, max_value=1.0))
    def test_quantile_is_sample(self, values, q):
        assert Cdf.of(values).quantile(q) in values

    @given(samples, st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_fraction_helpers_complement(self, values, threshold):
        assert fraction_at_most(values, threshold) + fraction_exceeding(
            values, threshold
        ) == 1.0


class TestCombineRatesProperties:
    rate_vectors = st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=4,
            max_size=4,
        ),
        min_size=1,
        max_size=5,
    )

    @given(rate_vectors)
    def test_bounds(self, vectors):
        arrays = [np.array(v) for v in vectors]
        combined = combine_rates(arrays)
        assert ((combined >= -1e-12) & (combined <= 1.0 + 1e-12)).all()

    @given(rate_vectors)
    def test_at_least_max_segment(self, vectors):
        arrays = [np.array(v) for v in vectors]
        combined = combine_rates(arrays)
        stacked = np.vstack(arrays)
        assert (combined >= stacked.max(axis=0) - 1e-9).all()

    @given(rate_vectors)
    def test_at_most_sum(self, vectors):
        arrays = [np.array(v) for v in vectors]
        combined = combine_rates(arrays)
        stacked = np.vstack(arrays)
        assert (combined <= stacked.sum(axis=0) + 1e-9).all()


class TestGilbertElliottProperties:
    probabilities = st.floats(min_value=0.001, max_value=1.0, allow_nan=False)

    @given(probabilities, probabilities, probabilities)
    @settings(max_examples=50, deadline=None)
    def test_mean_loss_bounded_by_bad_loss(self, p_gb, p_bg, loss_bad):
        model = GilbertElliottLoss(p_gb=p_gb, p_bg=p_bg, loss_good=0.0, loss_bad=loss_bad)
        assert 0.0 <= model.mean_loss() <= loss_bad + 1e-12

    @given(probabilities, probabilities)
    def test_stationary_in_unit_interval(self, p_gb, p_bg):
        model = GilbertElliottLoss(p_gb=p_gb, p_bg=p_bg)
        assert 0.0 <= model.stationary_bad() <= 1.0
