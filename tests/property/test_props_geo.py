"""Property-based tests for geodesy invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import (
    EARTH_RADIUS_KM,
    GeoPoint,
    destination_point,
    great_circle_km,
    midpoint,
)

latitudes = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
points = st.builds(GeoPoint, lat=latitudes, lon=longitudes)
distances = st.floats(min_value=0.0, max_value=20_000.0, allow_nan=False)
bearings = st.floats(min_value=0.0, max_value=360.0, allow_nan=False)


class TestMetricProperties:
    @given(points, points)
    def test_symmetry(self, a, b):
        assert great_circle_km(a, b) == great_circle_km(b, a)

    @given(points)
    def test_identity(self, a):
        assert great_circle_km(a, a) == 0.0

    @given(points, points)
    def test_non_negative_and_bounded(self, a, b):
        distance = great_circle_km(a, b)
        assert 0.0 <= distance <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(points, points, points)
    @settings(max_examples=200)
    def test_triangle_inequality(self, a, b, c):
        ab = great_circle_km(a, b)
        bc = great_circle_km(b, c)
        ac = great_circle_km(a, c)
        assert ac <= ab + bc + 1e-6


class TestDestinationProperties:
    @given(points, bearings, distances)
    @settings(max_examples=200)
    def test_travelled_distance(self, origin, bearing, distance):
        out = destination_point(origin, bearing, distance)
        # Near the antipode the travelled distance wraps; measure against
        # the wrapped equivalent.
        measured = great_circle_km(origin, out)
        half = math.pi * EARTH_RADIUS_KM
        expected = distance if distance <= half else 2 * half - distance
        assert measured == min(measured, half + 1e-6)
        assert abs(measured - expected) < max(1.0, 0.01 * expected)

    @given(points, bearings, distances)
    def test_output_in_valid_range(self, origin, bearing, distance):
        out = destination_point(origin, bearing, distance)
        assert -90.0 <= out.lat <= 90.0
        assert -180.0 <= out.lon <= 180.0


class TestMidpointProperties:
    @given(points, points)
    @settings(max_examples=200)
    def test_equidistant(self, a, b):
        mid = midpoint(a, b)
        da = great_circle_km(a, mid)
        db = great_circle_km(b, mid)
        assert abs(da - db) < max(1e-3, 1e-6 * (da + db))

    @given(points, points)
    def test_on_segment(self, a, b):
        mid = midpoint(a, b)
        total = great_circle_km(a, b)
        via = great_circle_km(a, mid) + great_circle_km(mid, b)
        assert via <= total + 1e-3
