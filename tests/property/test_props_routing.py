"""Property-based tests for valley-free routing and SPF."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.propagation import RouteKind, compute_routes_to_origin
from repro.igp.graph import IgpGraph
from repro.igp.spf import spf
from repro.net.relationships import ASGraph


@st.composite
def hierarchies(draw):
    """Random small AS hierarchies: a clique of 2-3 Tier-1s, a layer of
    mid ASes buying from them, and stubs below, plus random peering."""
    n_top = draw(st.integers(2, 3))
    n_mid = draw(st.integers(2, 5))
    n_stub = draw(st.integers(2, 6))
    graph = ASGraph()
    tops = list(range(1, n_top + 1))
    mids = list(range(10, 10 + n_mid))
    stubs = list(range(100, 100 + n_stub))
    for i, a in enumerate(tops):
        for b in tops[i + 1 :]:
            graph.add_peering(a, b)
    for mid in mids:
        providers = draw(
            st.lists(st.sampled_from(tops), min_size=1, max_size=n_top, unique=True)
        )
        for provider in providers:
            graph.add_provider_customer(provider, mid)
    for stub in stubs:
        providers = draw(
            st.lists(st.sampled_from(mids), min_size=1, max_size=2, unique=True)
        )
        for provider in providers:
            graph.add_provider_customer(provider, stub)
    # Random peering among mids.
    for i, a in enumerate(mids):
        for b in mids[i + 1 :]:
            if draw(st.booleans()) and b not in graph.neighbors(a):
                graph.add_peering(a, b)
    return graph


def _is_valley_free(graph: ASGraph, path: tuple[int, ...], origin: int) -> bool:
    """Check the classic up*-across?-down* pattern along the path walked
    from the routed AS toward the origin (reversed = export direction)."""
    full = path + (origin,) if not path or path[-1] != origin else path
    # Walk in export direction: origin -> ... -> holder.
    hops = list(reversed(full))
    # Edge types in export direction: customer->provider is "up".
    from repro.net.relationships import Relationship

    seen_down_or_peer = False
    peers_used = 0
    for a, b in zip(hops, hops[1:]):
        rel = graph.relationship(b, a)  # how b sees a
        if rel is Relationship.CUSTOMER:
            # a is b's customer: export went upward (customer->provider).
            if seen_down_or_peer:
                return False
        elif rel is Relationship.PEER:
            peers_used += 1
            if peers_used > 1 or seen_down_or_peer:
                return False
            seen_down_or_peer = True
        else:
            seen_down_or_peer = True
    return True


class TestValleyFreeProperties:
    @given(hierarchies())
    @settings(max_examples=60, deadline=None)
    def test_full_reachability(self, graph):
        for origin in graph.asns():
            routes = compute_routes_to_origin(graph, origin)
            assert set(routes) == set(graph.asns())

    @given(hierarchies())
    @settings(max_examples=60, deadline=None)
    def test_paths_are_valley_free_and_loopless(self, graph):
        asns = graph.asns()
        for origin in asns[:3]:
            routes = compute_routes_to_origin(graph, origin)
            for asn, route in routes.items():
                full = (asn,) + route.path
                assert len(set(full)) == len(full), "loop"
                if route.path:
                    assert route.path[-1] == origin
                    assert _is_valley_free(graph, route.path, origin)

    @given(hierarchies())
    @settings(max_examples=40, deadline=None)
    def test_customer_routes_preferred(self, graph):
        for origin in graph.asns()[:3]:
            routes = compute_routes_to_origin(graph, origin)
            for asn, route in routes.items():
                if route.kind is not RouteKind.CUSTOMER:
                    # If a customer path existed, it would have won; check
                    # the origin is not in this AS's customer cone.
                    if route.kind in (RouteKind.PEER, RouteKind.PROVIDER):
                        assert origin not in graph.customer_cone(asn)


@st.composite
def weighted_graphs(draw):
    n = draw(st.integers(3, 8))
    graph = IgpGraph()
    nodes = [f"n{i}" for i in range(n)]
    # A spanning chain guarantees connectivity; random extra links.
    for a, b in zip(nodes, nodes[1:]):
        graph.add_link(a, b, draw(st.floats(1.0, 10.0)))
    for i in range(n):
        for j in range(i + 2, n):
            if draw(st.booleans()):
                graph.add_link(nodes[i], nodes[j], draw(st.floats(1.0, 10.0)))
    return graph, nodes


class TestSpfProperties:
    @given(weighted_graphs())
    @settings(max_examples=80, deadline=None)
    def test_path_cost_matches_distance(self, graph_nodes):
        graph, nodes = graph_nodes
        result = spf(graph, nodes[0])
        for node in nodes:
            path = result.path_to(node)
            assert path is not None
            cost = sum(graph.metric(a, b) for a, b in zip(path, path[1:]))
            assert abs(cost - result.metric_to(node)) < 1e-9

    @given(weighted_graphs())
    @settings(max_examples=80, deadline=None)
    def test_symmetric_distances(self, graph_nodes):
        graph, nodes = graph_nodes
        forward = spf(graph, nodes[0]).metric_to(nodes[-1])
        backward = spf(graph, nodes[-1]).metric_to(nodes[0])
        assert abs(forward - backward) < 1e-9
