"""Property-based tests for addressing and the radix trie."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addressing import IPv4Address, Prefix
from repro.net.radix import RadixTree

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address)
lengths = st.integers(min_value=0, max_value=32)


@st.composite
def prefixes(draw):
    address = draw(addresses)
    length = draw(lengths)
    return Prefix.from_address(address, length)


class TestAddressProperties:
    @given(addresses)
    def test_parse_format_roundtrip(self, address):
        assert IPv4Address.parse(str(address)) == address

    @given(prefixes())
    def test_prefix_parse_roundtrip(self, prefix):
        assert Prefix.parse(str(prefix)) == prefix

    @given(prefixes())
    def test_prefix_contains_its_network(self, prefix):
        assert prefix.contains_address(prefix.first_address)
        assert prefix.contains_address(prefix.probe_address)

    @given(prefixes())
    def test_supernet_contains_prefix(self, prefix):
        if prefix.length == 0:
            return
        assert prefix.supernet().contains_prefix(prefix)

    @given(prefixes())
    @settings(max_examples=100)
    def test_subnets_partition(self, prefix):
        if prefix.length > 30:
            return
        subnets = prefix.subnets(prefix.length + 2)
        assert len(subnets) == 4
        total = sum(s.num_addresses for s in subnets)
        assert total == prefix.num_addresses
        for subnet in subnets:
            assert prefix.contains_prefix(subnet)

    @given(prefixes(), prefixes())
    def test_containment_antisymmetry(self, a, b):
        if a == b:
            return
        if a.contains_prefix(b):
            assert not b.contains_prefix(a)


class TestRadixAgainstNaive:
    @given(
        st.lists(st.tuples(prefixes(), st.integers()), min_size=0, max_size=40),
        st.lists(addresses, min_size=1, max_size=20),
    )
    @settings(max_examples=150, deadline=None)
    def test_longest_match_equals_reference(self, entries, queries):
        tree: RadixTree = RadixTree()
        reference: dict[Prefix, int] = {}
        for prefix, value in entries:
            tree.insert(prefix, value)
            reference[prefix] = value
        for address in queries:
            expected = None
            for prefix, value in reference.items():
                if prefix.contains_address(address):
                    if expected is None or prefix.length > expected[0].length:
                        expected = (prefix, value)
            assert tree.longest_match(address) == expected

    @given(st.lists(prefixes(), min_size=1, max_size=30, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_insert_delete_roundtrip(self, prefix_list):
        tree: RadixTree = RadixTree()
        for i, prefix in enumerate(prefix_list):
            tree.insert(prefix, i)
        assert len(tree) == len(prefix_list)
        for prefix in prefix_list:
            tree.delete(prefix)
        assert len(tree) == 0
        assert tree.longest_match(IPv4Address(0)) is None
