"""The hidden-routes pathology and the best-external fix (Sec. 3.2).

Reconstructs the paper's example: egress router A is geographically
closer to prefix p than router B, but the reflector hears B's route
first, assigns it a high geo preference, and reflects it; A then prefers
the reflected route and — without best-external — never tells the
reflector about its own, better external route.  The network converges to
the wrong egress.  Enabling "advertise best external" repairs it.
"""

import pytest

from repro.bgp.attributes import AsPath, Route
from repro.bgp.engine import BgpEngine
from repro.bgp.messages import Update
from repro.bgp.router import BgpRouter
from repro.bgp.session import Session, SessionType
from repro.geo.coords import GeoPoint
from repro.geo.geoip import GeoIPDatabase
from repro.net.addressing import Prefix
from repro.vns.geo_rr import GeoRouteReflector

ASN = 65000
PFX = Prefix.parse("203.0.113.0/24")
AMSTERDAM = GeoPoint(52.37, 4.90)
SINGAPORE = GeoPoint(1.35, 103.82)
NEAR_AMSTERDAM = GeoPoint(51.9, 4.5)


def build(enable_best_external: bool) -> tuple[BgpEngine, BgpRouter, BgpRouter]:
    geoip = GeoIPDatabase()
    geoip.register(PFX, NEAR_AMSTERDAM, "NL")
    engine = BgpEngine()
    router_a = BgpRouter(
        "A", ASN, location=AMSTERDAM, enable_best_external=enable_best_external
    )
    router_b = BgpRouter(
        "B", ASN, location=SINGAPORE, enable_best_external=enable_best_external
    )
    reflector = GeoRouteReflector(
        "RR",
        ASN,
        geoip=geoip,
        router_locations={"A": AMSTERDAM, "B": SINGAPORE},
    )
    for router in (router_a, router_b):
        router.add_session(
            Session(peer_id="RR", session_type=SessionType.IBGP, peer_asn=ASN)
        )
        reflector.add_session(
            Session(
                peer_id=router.router_id,
                session_type=SessionType.IBGP,
                peer_asn=ASN,
                rr_client=True,
            )
        )
        router.add_session(
            Session(
                peer_id=f"ext-{router.router_id}",
                session_type=SessionType.EBGP,
                peer_asn=100,
            )
        )
        engine.add_router(router)
    engine.add_router(reflector)
    return engine, router_a, router_b


def inject_external(engine: BgpEngine, router_id: str) -> None:
    engine.inject(
        Update(
            sender=f"ext-{router_id}",
            receiver=router_id,
            route=Route(
                prefix=PFX, as_path=AsPath((100, 9)), next_hop=f"ext-{router_id}"
            ),
        )
    )


class TestHiddenRoutes:
    def test_worst_case_order_without_best_external(self):
        engine, router_a, router_b = build(enable_best_external=False)
        inject_external(engine, "B")  # the far egress is heard first
        engine.run()
        inject_external(engine, "A")
        engine.run()
        # A's superior external route is hidden: A itself prefers the
        # reflected route via B, so the network exits at B.
        assert router_a.best(PFX).next_hop == "B"
        reflector = engine.router("RR")
        assert len(reflector.adj_rib_in.routes_for(PFX)) == 1

    def test_best_external_fix(self):
        engine, router_a, router_b = build(enable_best_external=True)
        inject_external(engine, "B")
        engine.run()
        inject_external(engine, "A")
        engine.run()
        # With best external, A keeps advertising its external route even
        # while preferring the reflected one, the reflector re-ranks, and
        # the network converges to the geographically correct egress.
        assert router_a.best(PFX).ebgp
        assert router_a.best(PFX).learned_from == "ext-A"
        assert router_b.best(PFX).next_hop == "A"

    def test_good_order_converges_either_way(self):
        engine, router_a, router_b = build(enable_best_external=False)
        inject_external(engine, "A")  # the near egress first: no hiding
        engine.run()
        inject_external(engine, "B")
        engine.run()
        assert router_a.best(PFX).ebgp
        assert router_b.best(PFX).next_hop == "A"

    def test_geo_preference_values(self):
        engine, router_a, router_b = build(enable_best_external=True)
        inject_external(engine, "A")
        inject_external(engine, "B")
        engine.run()
        reflected = router_b.best(PFX)
        # The geo-assigned preference is "always much higher than the
        # default value of 100".
        assert reflected.local_pref > 1000
