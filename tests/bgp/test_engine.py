"""Unit tests for the BGP message engine."""

import pytest

from repro.bgp.attributes import AsPath, Route
from repro.bgp.engine import BgpEngine, ConvergenceError
from repro.bgp.messages import IgpNotification, Update
from repro.bgp.router import BgpRouter
from repro.bgp.session import Session, SessionType
from repro.net.addressing import Prefix

PFX = Prefix.parse("203.0.113.0/24")
ASN = 65000


def build_pair() -> tuple[BgpEngine, BgpRouter, BgpRouter]:
    engine = BgpEngine()
    a = BgpRouter("a", ASN)
    b = BgpRouter("b", ASN)
    a.add_session(Session(peer_id="b", session_type=SessionType.IBGP, peer_asn=ASN))
    b.add_session(Session(peer_id="a", session_type=SessionType.IBGP, peer_asn=ASN))
    a.add_session(Session(peer_id="ext", session_type=SessionType.EBGP, peer_asn=100))
    engine.add_router(a)
    engine.add_router(b)
    return engine, a, b


def ext_update() -> Update:
    return Update(
        sender="ext",
        receiver="a",
        route=Route(prefix=PFX, as_path=AsPath((100, 9)), next_hop="ext"),
    )


class TestEngine:
    def test_duplicate_router_rejected(self):
        engine = BgpEngine()
        engine.add_router(BgpRouter("a", ASN))
        with pytest.raises(ValueError):
            engine.add_router(BgpRouter("a", ASN))

    def test_delivery_propagates(self):
        engine, a, b = build_pair()
        engine.inject(ext_update())
        delivered = engine.run()
        assert delivered >= 2
        assert a.best(PFX) is not None
        assert b.best(PFX) is not None
        assert b.best(PFX).next_hop == "a"

    def test_converged_flag(self):
        engine, *_ = build_pair()
        assert engine.converged
        engine.inject(ext_update())
        assert not engine.converged
        engine.run()
        assert engine.converged

    def test_step_returns_false_when_empty(self):
        engine, *_ = build_pair()
        assert not engine.step()

    def test_external_outbox_captures_ebgp(self):
        engine, a, b = build_pair()
        engine.inject(a.originate(PFX))
        engine.run()
        assert any(m.receiver == "ext" for m in engine.external_outbox)

    def test_message_budget(self):
        engine, *_ = build_pair()
        engine.inject(ext_update())
        with pytest.raises(ConvergenceError):
            engine.run(max_messages=0)

    def test_budget_is_exact(self):
        # The engine must deliver exactly max_messages — never one more.
        engine, *_ = build_pair()
        engine.inject(ext_update())
        with pytest.raises(ConvergenceError) as excinfo:
            engine.run(max_messages=1)
        assert engine.delivered == 1
        assert excinfo.value.delivered == 1

    def test_zero_budget_delivers_nothing(self):
        engine, *_ = build_pair()
        engine.inject(ext_update())
        with pytest.raises(ConvergenceError):
            engine.run(max_messages=0)
        assert engine.delivered == 0
        assert engine.last_delivered is None

    def test_budget_not_raised_on_exact_convergence(self):
        # A run that converges in exactly max_messages must not raise.
        engine, *_ = build_pair()
        engine.inject(ext_update())
        needed = engine.run()
        engine2, *_ = build_pair()
        engine2.inject(ext_update())
        assert engine2.run(max_messages=needed) == needed

    def test_unknown_router_lookup(self):
        engine, *_ = build_pair()
        with pytest.raises(KeyError):
            engine.router("zzz")

    def test_inject_single_message(self):
        engine, a, b = build_pair()
        engine.inject(ext_update())
        engine.run()
        assert engine.delivered >= 1


class TestDiagnostics:
    def test_budget_error_carries_queue_snapshot(self):
        engine, a, b = build_pair()
        engine.inject(ext_update())
        with pytest.raises(ConvergenceError) as excinfo:
            engine.run(max_messages=1)
        error = excinfo.value
        assert error.delivered == 1
        assert error.total_delivered == engine.delivered == 1
        assert error.pending == len(engine.queue)
        assert error.queue_depths == engine.pending_by_receiver()
        assert error.last_message == engine.last_delivered
        assert "still pending" in str(error)

    def test_diagnostics_distinguish_per_call_from_cumulative(self):
        # `delivered` is this call's count; `total_delivered` is the
        # engine's lifetime count — they diverge on the second run call.
        engine, a, b = build_pair()
        engine.inject(ext_update())
        first = engine.run()
        assert engine.delivered == first
        engine.inject(
            Update(
                sender="ext",
                receiver="a",
                route=Route(
                    prefix=Prefix.parse("198.51.100.0/24"),
                    as_path=AsPath((100, 9)),
                    next_hop="ext",
                ),
            )
        )
        with pytest.raises(ConvergenceError) as excinfo:
            engine.run(max_messages=1)
        error = excinfo.value
        assert error.delivered == 1
        assert error.total_delivered == first + 1
        assert engine.delivered == first + 1

    def test_last_delivered_tracks_messages(self):
        engine, a, b = build_pair()
        assert engine.last_delivered is None
        update = ext_update()
        engine.inject(update)
        engine.step()
        assert engine.last_delivered == update


class TestIgpNotification:
    def test_notification_triggers_refresh(self):
        engine, a, b = build_pair()
        engine.inject(ext_update())
        engine.run()
        # A notification to a speaker with state re-runs its decisions;
        # with nothing changed, nothing new is advertised.
        engine.inject(IgpNotification(receiver="a"))
        engine.run()
        assert engine.converged
        assert a.best(PFX) is not None
        assert b.best(PFX) is not None

    def test_notification_to_empty_router_is_quiet(self):
        engine, a, b = build_pair()
        engine.inject(IgpNotification(receiver="b"))
        assert engine.run() == 1
        assert b.best(PFX) is None
