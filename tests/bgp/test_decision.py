"""Unit tests for the RFC 4271 decision process."""

import pytest

from repro.bgp.attributes import AsPath, Origin, Route
from repro.bgp.decision import DecisionContext, best_external, best_route, decision_order
from repro.net.addressing import Prefix

PFX = Prefix.parse("203.0.113.0/24")


def route(**kwargs) -> Route:
    defaults = dict(
        prefix=PFX,
        as_path=AsPath((1, 2)),
        next_hop="nh",
        learned_from="peer",
    )
    defaults.update(kwargs)
    return Route(**defaults)


class TestStages:
    def test_empty(self):
        assert best_route([]) is None
        assert decision_order([], DecisionContext()) == []

    def test_local_pref_wins_over_shorter_path(self):
        low = route(local_pref=100, as_path=AsPath((1,)), learned_from="a")
        high = route(local_pref=200, as_path=AsPath((1, 2, 3)), learned_from="b")
        assert best_route([low, high]) is high

    def test_shorter_as_path(self):
        short = route(as_path=AsPath((1, 2)), learned_from="a")
        long = route(as_path=AsPath((1, 2, 3)), learned_from="b")
        assert best_route([long, short]) is short

    def test_origin_tiebreak(self):
        igp = route(origin=Origin.IGP, learned_from="a")
        egp = route(origin=Origin.EGP, learned_from="b")
        incomplete = route(origin=Origin.INCOMPLETE, learned_from="c")
        assert best_route([incomplete, egp, igp]) is igp

    def test_med_within_same_neighbor_as(self):
        low_med = route(med=5, learned_from="a", next_hop="n1")
        high_med = route(med=50, learned_from="b", next_hop="n2")
        assert best_route([high_med, low_med]) is low_med

    def test_med_not_compared_across_neighbor_as(self):
        # Different first-hop AS: MED must not discriminate; the eBGP
        # stage then ties, and IGP metric decides.
        from_as1 = route(as_path=AsPath((1, 9)), med=50, learned_from="a", next_hop="n1")
        from_as2 = route(as_path=AsPath((2, 9)), med=5, learned_from="b", next_hop="n2")
        ctx = DecisionContext(igp_metric=lambda nh: {"n1": 1.0, "n2": 9.0}[nh])
        assert best_route([from_as1, from_as2], ctx) is from_as1

    def test_always_compare_med(self):
        from_as1 = route(as_path=AsPath((1, 9)), med=50, learned_from="a", next_hop="n1")
        from_as2 = route(as_path=AsPath((2, 9)), med=5, learned_from="b", next_hop="n2")
        ctx = DecisionContext(always_compare_med=True)
        assert best_route([from_as1, from_as2], ctx) is from_as2

    def test_ebgp_over_ibgp(self):
        ibgp = route(ebgp=False, learned_from="rr")
        ebgp = route(ebgp=True, learned_from="ext")
        assert best_route([ibgp, ebgp]) is ebgp

    def test_igp_metric_hot_potato(self):
        near = route(next_hop="close", learned_from="a")
        far = route(next_hop="far", learned_from="b")
        ctx = DecisionContext(igp_metric=lambda nh: {"close": 1.0, "far": 100.0}[nh])
        assert best_route([far, near], ctx) is near

    def test_cluster_list_length(self):
        direct = route(learned_from="a", cluster_list=("c1",))
        double = route(learned_from="b", cluster_list=("c2", "c1"))
        assert best_route([double, direct]) is direct

    def test_final_deterministic_tiebreak(self):
        a = route(learned_from="aaa")
        b = route(learned_from="bbb")
        assert best_route([b, a]) is a
        assert best_route([a, b]) is a

    def test_stage_order_local_pref_before_ebgp(self):
        # An iBGP route with high LOCAL_PREF beats a local eBGP route:
        # this is exactly how the geo reflector overrides hot potato.
        geo = route(local_pref=2500, ebgp=False, learned_from="rr", next_hop="egress")
        local = route(local_pref=200, ebgp=True, learned_from="ext")
        assert best_route([local, geo]) is geo


class TestBestExternal:
    def test_picks_best_among_ebgp_only(self):
        ext_long = route(ebgp=True, as_path=AsPath((1, 2, 3)), learned_from="e1")
        ext_short = route(ebgp=True, as_path=AsPath((1, 2)), learned_from="e2")
        internal = route(ebgp=False, local_pref=9999, learned_from="rr")
        assert best_external([ext_long, internal, ext_short]) is ext_short

    def test_none_when_no_external(self):
        internal = route(ebgp=False, learned_from="rr")
        assert best_external([internal]) is None
