"""Unit tests for RFC 4456 route reflection."""

import pytest

from repro.bgp.attributes import AsPath, Route
from repro.bgp.messages import Update, Withdraw
from repro.bgp.reflector import RouteReflector
from repro.bgp.session import Session, SessionType
from repro.net.addressing import Prefix

PFX = Prefix.parse("203.0.113.0/24")
ASN = 65000


def make_rr(router_id="rr1", **kwargs) -> RouteReflector:
    return RouteReflector(router_id, ASN, **kwargs)


def client_session(peer_id: str) -> Session:
    return Session(
        peer_id=peer_id, session_type=SessionType.IBGP, peer_asn=ASN, rr_client=True
    )


def nonclient_session(peer_id: str) -> Session:
    return Session(peer_id=peer_id, session_type=SessionType.IBGP, peer_asn=ASN)


def update_from(sender: str, receiver: str, next_hop=None, lp=100) -> Update:
    return Update(
        sender=sender,
        receiver=receiver,
        route=Route(
            prefix=PFX,
            as_path=AsPath((100, 9)),
            next_hop=next_hop or sender,
            local_pref=lp,
        ),
    )


class TestReflection:
    def test_client_route_reflected_to_other_clients(self):
        rr = make_rr()
        rr.add_session(client_session("rA"))
        rr.add_session(client_session("rB"))
        rr.add_session(client_session("rC"))
        out = rr.process(update_from("rA", "rr1"))
        receivers = {m.receiver for m in out if isinstance(m, Update)}
        assert receivers == {"rB", "rC"}  # never back to the sender

    def test_client_route_reflected_to_nonclients(self):
        rr = make_rr()
        rr.add_session(client_session("rA"))
        rr.add_session(nonclient_session("rr2"))
        out = rr.process(update_from("rA", "rr1"))
        assert {m.receiver for m in out if isinstance(m, Update)} == {"rr2"}

    def test_nonclient_route_reflected_to_clients_only(self):
        rr = make_rr()
        rr.add_session(client_session("rA"))
        rr.add_session(nonclient_session("rr2"))
        rr.add_session(nonclient_session("rr3"))
        out = rr.process(update_from("rr2", "rr1", next_hop="rX"))
        assert {m.receiver for m in out if isinstance(m, Update)} == {"rA"}

    def test_reflection_attributes_set(self):
        rr = make_rr(cluster_id="cluster-1")
        rr.add_session(client_session("rA"))
        rr.add_session(client_session("rB"))
        out = rr.process(update_from("rA", "rr1"))
        route = next(m.route for m in out if isinstance(m, Update))
        assert route.originator_id == "rA"
        assert route.cluster_list == ("cluster-1",)

    def test_next_hop_preserved(self):
        # A reflector must NOT set next-hop-self: clients need the real
        # egress to compute hot-potato metrics and the geo reflector needs
        # it to compute distances.
        rr = make_rr()
        rr.add_session(client_session("rA"))
        rr.add_session(client_session("rB"))
        out = rr.process(update_from("rA", "rr1", next_hop="rA"))
        route = next(m.route for m in out if isinstance(m, Update))
        assert route.next_hop == "rA"

    def test_cluster_loop_rejected(self):
        rr = make_rr(cluster_id="cluster-1")
        rr.add_session(nonclient_session("rr2"))
        looped = Update(
            sender="rr2",
            receiver="rr1",
            route=Route(
                prefix=PFX,
                as_path=AsPath((100,)),
                next_hop="rX",
                cluster_list=("cluster-1",),
            ),
        )
        rr.process(looped)
        assert rr.best(PFX) is None

    def test_withdraw_reflected(self):
        rr = make_rr()
        rr.add_session(client_session("rA"))
        rr.add_session(client_session("rB"))
        rr.process(update_from("rA", "rr1"))
        out = rr.process(Withdraw(sender="rA", receiver="rr1", prefix=PFX))
        assert any(isinstance(m, Withdraw) and m.receiver == "rB" for m in out)

    def test_best_switch_updates_clients(self):
        rr = make_rr()
        rr.add_session(client_session("rA"))
        rr.add_session(client_session("rB"))
        rr.add_session(client_session("rC"))
        rr.process(update_from("rA", "rr1", lp=100))
        out = rr.process(update_from("rB", "rr1", lp=500))
        # rC must learn the new best (via rB); rA too.
        updated = {m.receiver for m in out if isinstance(m, Update)}
        assert "rC" in updated and "rA" in updated
        sent_to_c = rr.adj_rib_out.route("rC", PFX)
        assert sent_to_c.next_hop == "rB"

    def test_clients_listing(self):
        rr = make_rr()
        rr.add_session(client_session("rA"))
        rr.add_session(nonclient_session("rr2"))
        assert rr.clients() == ["rA"]

    def test_hidden_route_check(self):
        rr = make_rr()
        rr.add_session(client_session("rA"))
        rr.add_session(client_session("rB"))
        rr.process(update_from("rA", "rr1"))
        assert not rr.hidden_route_check(PFX)
        rr.process(update_from("rB", "rr1"))
        assert rr.hidden_route_check(PFX)
