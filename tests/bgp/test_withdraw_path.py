"""The withdraw path end to end: originate → converge → withdraw → clean.

Complements the per-router unit tests: runs real engine convergence and
checks that after a withdrawal nothing lingers anywhere — Loc-RIBs,
Adj-RIBs-In, or the announcements made to external peers.
"""

from repro.bgp.engine import BgpEngine
from repro.bgp.messages import Update, Withdraw
from repro.bgp.router import BgpRouter
from repro.bgp.session import Session, SessionType
from repro.net.addressing import Prefix

PFX = Prefix.parse("203.0.113.0/24")
ASN = 65000


def build_mesh(n: int = 3, externals: tuple[str, ...] = ("ext-a",)):
    """A full iBGP mesh of ``n`` routers; router r0 also has eBGP peers."""
    engine = BgpEngine()
    routers = [BgpRouter(f"r{i}", ASN) for i in range(n)]
    for i, router in enumerate(routers):
        for j, peer in enumerate(routers):
            if i != j:
                router.add_session(
                    Session(
                        peer_id=peer.router_id,
                        session_type=SessionType.IBGP,
                        peer_asn=ASN,
                    )
                )
        engine.add_router(router)
    for ext in externals:
        routers[0].add_session(
            Session(peer_id=ext, session_type=SessionType.EBGP, peer_asn=100)
        )
    return engine, routers


def ribs_clean(router: BgpRouter) -> bool:
    return router.best(PFX) is None and not list(router.loc_rib.prefixes())


class TestWithdrawPath:
    def test_originate_converge_withdraw_converge(self):
        engine, routers = build_mesh()
        origin = routers[0]

        engine.inject(origin.originate(PFX))
        engine.run()
        for router in routers:
            assert router.best(PFX) is not None
        announced = [
            m
            for m in engine.external_outbox
            if isinstance(m, Update) and m.receiver == "ext-a"
        ]
        assert announced, "origination never reached the external peer"

        engine.inject(origin.withdraw_origination(PFX))
        engine.run()
        # Every speaker's tables are clean again.
        for router in routers:
            assert ribs_clean(router), router.router_id
        # And the external peer was told the route is gone.
        withdrawn = [
            m
            for m in engine.external_outbox
            if isinstance(m, Withdraw) and m.receiver == "ext-a"
        ]
        assert withdrawn, "withdrawal never reached the external peer"

    def test_withdraw_of_unoriginated_prefix_is_quiet(self):
        engine, routers = build_mesh()
        messages = routers[1].withdraw_origination(PFX)
        assert messages == []
        engine.inject(messages)
        assert engine.run() == 0

    def test_anycast_style_second_origin_survives_first_withdrawal(self):
        engine, routers = build_mesh()
        first, second = routers[0], routers[1]

        engine.inject(first.originate(PFX))
        engine.inject(second.originate(PFX))
        engine.run()
        for router in routers:
            assert router.best(PFX) is not None

        # Withdrawing one origination leaves the other serving everyone.
        engine.inject(first.withdraw_origination(PFX))
        engine.run()
        for router in routers:
            best = router.best(PFX)
            assert best is not None, router.router_id
        assert second.best(PFX) is not None

        # Withdrawing the last origination empties the AS.
        engine.inject(second.withdraw_origination(PFX))
        engine.run()
        for router in routers:
            assert ribs_clean(router), router.router_id

    def test_withdraw_converges_with_no_external_leftovers(self):
        engine, routers = build_mesh(externals=("ext-a", "ext-b"))
        origin = routers[0]
        engine.inject(origin.originate(PFX))
        engine.run()
        engine.inject(origin.withdraw_origination(PFX))
        engine.run()
        assert engine.converged
        # For each external peer the last word about PFX is a withdrawal.
        for ext in ("ext-a", "ext-b"):
            about = [m for m in engine.external_outbox if m.receiver == ext]
            assert about
            assert isinstance(about[-1], Withdraw)
