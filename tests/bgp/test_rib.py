"""Unit tests for the RIB structures."""

from repro.bgp.attributes import AsPath, Route
from repro.bgp.rib import AdjRib, LocRib
from repro.net.addressing import Prefix

P1 = Prefix.parse("203.0.113.0/24")
P2 = Prefix.parse("198.51.100.0/24")


def route(prefix=P1, peer="a") -> Route:
    return Route(prefix=prefix, as_path=AsPath((1,)), next_hop=peer)


class TestAdjRib:
    def test_update_and_route(self):
        rib = AdjRib()
        rib.update("a", route())
        assert rib.route("a", P1) is not None
        assert rib.route("b", P1) is None

    def test_routes_for_collects_all_peers(self):
        rib = AdjRib()
        rib.update("a", route(peer="a"))
        rib.update("b", route(peer="b"))
        rib.update("b", route(prefix=P2, peer="b"))
        assert len(rib.routes_for(P1)) == 2
        assert len(rib.routes_for(P2)) == 1

    def test_withdraw(self):
        rib = AdjRib()
        rib.update("a", route())
        removed = rib.withdraw("a", P1)
        assert removed is not None
        assert rib.withdraw("a", P1) is None
        assert rib.routes_for(P1) == []

    def test_prefixes_union(self):
        rib = AdjRib()
        rib.update("a", route())
        rib.update("b", route(prefix=P2))
        assert rib.prefixes() == {P1, P2}

    def test_drop_peer(self):
        rib = AdjRib()
        rib.update("a", route())
        rib.update("a", route(prefix=P2))
        dropped = rib.drop_peer("a")
        assert set(dropped) == {P1, P2}
        assert len(rib) == 0

    def test_len_counts_routes(self):
        rib = AdjRib()
        rib.update("a", route())
        rib.update("b", route())
        assert len(rib) == 2


class TestLocRib:
    def test_set_and_get(self):
        rib = LocRib()
        rib.set_best(route())
        assert rib.best(P1) is not None
        assert P1 in rib
        assert len(rib) == 1

    def test_clear(self):
        rib = LocRib()
        rib.set_best(route())
        assert rib.clear(P1) is not None
        assert rib.clear(P1) is None
        assert P1 not in rib

    def test_items_and_prefixes(self):
        rib = LocRib()
        rib.set_best(route())
        rib.set_best(route(prefix=P2))
        assert set(rib.prefixes()) == {P1, P2}
        assert len(list(rib.items())) == 2
