"""Unit tests for BGP path attributes."""

import pytest

from repro.bgp.attributes import NO_EXPORT, AsPath, Origin, Route
from repro.net.addressing import Prefix

PFX = Prefix.parse("203.0.113.0/24")


class TestAsPath:
    def test_prepend(self):
        path = AsPath((2, 3)).prepend(1)
        assert path.asns == (1, 2, 3)
        assert len(path) == 3

    def test_prepend_multiple(self):
        path = AsPath((2,)).prepend(1, count=3)
        assert path.asns == (1, 1, 1, 2)

    def test_prepend_zero_rejected(self):
        with pytest.raises(ValueError):
            AsPath().prepend(1, count=0)

    def test_first_hop_and_origin(self):
        path = AsPath((10, 20, 30))
        assert path.first_hop == 10
        assert path.origin_as == 30

    def test_empty_path(self):
        path = AsPath()
        assert path.first_hop is None
        assert path.origin_as is None
        assert str(path) == "(empty)"

    def test_loop_detection(self):
        assert AsPath((1, 2, 3)).has_loop(2)
        assert not AsPath((1, 2, 3)).has_loop(4)

    def test_iteration_and_contains(self):
        path = AsPath((5, 6))
        assert list(path) == [5, 6]
        assert 5 in path


class TestRoute:
    def make(self, **kwargs) -> Route:
        defaults = dict(prefix=PFX, as_path=AsPath((1, 2)), next_hop="r1")
        defaults.update(kwargs)
        return Route(**defaults)

    def test_defaults(self):
        route = self.make()
        assert route.local_pref == 100
        assert route.origin is Origin.IGP
        assert route.med == 0
        assert not route.ebgp

    def test_neighbor_as(self):
        assert self.make().neighbor_as == 1

    def test_with_communities(self):
        route = self.make().with_communities(NO_EXPORT, "rel:peer")
        assert NO_EXPORT in route.communities
        assert "rel:peer" in route.communities

    def test_received_stamps_metadata(self):
        route = self.make().received(learned_from="peerX", ebgp=True)
        assert route.learned_from == "peerX"
        assert route.ebgp

    def test_reflected_sets_originator_once(self):
        route = self.make().reflected(originator="rA", cluster_id="c1")
        assert route.originator_id == "rA"
        assert route.cluster_list == ("c1",)
        again = route.reflected(originator="rB", cluster_id="c2")
        # ORIGINATOR_ID is set only by the first reflector.
        assert again.originator_id == "rA"
        assert again.cluster_list == ("c2", "c1")

    def test_origin_preference_order(self):
        assert Origin.IGP < Origin.EGP < Origin.INCOMPLETE

    def test_immutability(self):
        route = self.make()
        with pytest.raises(AttributeError):
            route.local_pref = 500  # type: ignore[misc]
