"""Unit tests for AS-level valley-free route propagation."""

import pytest

from repro.bgp.propagation import (
    AsLevelRouting,
    RouteKind,
    compute_routes_to_origin,
)
from repro.net.relationships import ASGraph, Relationship


@pytest.fixture
def diamond() -> ASGraph:
    """Two Tier-1s (1, 2) peering; 3 buys from 1; 4 buys from 2; 5 buys
    from both 3 and 4; 3 and 4 peer."""
    g = ASGraph()
    g.add_peering(1, 2)
    g.add_provider_customer(1, 3)
    g.add_provider_customer(2, 4)
    g.add_provider_customer(3, 5)
    g.add_provider_customer(4, 5)
    g.add_peering(3, 4)
    return g


class TestComputation:
    def test_origin_route(self, diamond):
        routes = compute_routes_to_origin(diamond, 5)
        assert routes[5].kind is RouteKind.ORIGIN
        assert routes[5].path == ()

    def test_customer_routes_climb(self, diamond):
        routes = compute_routes_to_origin(diamond, 5)
        assert routes[3].kind is RouteKind.CUSTOMER
        assert routes[3].path == (5,)
        assert routes[1].kind is RouteKind.CUSTOMER
        assert routes[1].path == (3, 5)

    def test_peer_route_single_hop(self, diamond):
        routes = compute_routes_to_origin(diamond, 3)
        # 4 peers with 3, so it learns (3,) as a peer route rather than a
        # longer provider route.
        assert routes[4].kind is RouteKind.PEER
        assert routes[4].path == (3,)

    def test_provider_routes_descend(self, diamond):
        routes = compute_routes_to_origin(diamond, 3)
        # 5 is 3's customer so it has a... provider route via 3 or 4;
        # customer preference doesn't apply (3 is 5's provider).
        assert routes[5].kind is RouteKind.PROVIDER
        assert routes[5].path[0] in (3, 4)

    def test_everyone_reaches_everyone(self, diamond):
        for origin in diamond.asns():
            routes = compute_routes_to_origin(diamond, origin)
            assert set(routes) == set(diamond.asns())

    def test_customer_preferred_over_peer(self):
        g = ASGraph()
        g.add_provider_customer(1, 3)  # 3 is 1's customer
        g.add_peering(1, 2)
        g.add_provider_customer(2, 3)
        routes = compute_routes_to_origin(g, 3)
        assert routes[1].kind is RouteKind.CUSTOMER
        assert routes[2].kind is RouteKind.CUSTOMER

    def test_valley_free_no_peer_then_up(self):
        # 1-2 peer; 2 sells to 4; origin hangs off 1.  4 must reach the
        # origin via its provider 2 (which peers with 1): path 2,1,origin.
        g = ASGraph()
        g.add_peering(1, 2)
        g.add_provider_customer(1, 9)
        g.add_provider_customer(2, 4)
        routes = compute_routes_to_origin(g, 9)
        assert routes[4].path == (2, 1, 9)
        assert routes[4].kind is RouteKind.PROVIDER

    def test_unknown_origin_raises(self, diamond):
        with pytest.raises(KeyError):
            compute_routes_to_origin(diamond, 999)


class TestAsLevelRouting:
    def test_path_includes_both_ends(self, diamond):
        routing = AsLevelRouting(diamond)
        assert routing.path(1, 5) == (1, 3, 5)
        assert routing.path(5, 5) == (5,)

    def test_caching_returns_same_table(self, diamond):
        routing = AsLevelRouting(diamond)
        assert routing.table_for_origin(5) is routing.table_for_origin(5)

    def test_route_none_for_unknown_as(self, diamond):
        routing = AsLevelRouting(diamond)
        assert routing.route(999, 5) is None


class TestExportToNeighbor:
    def test_provider_exports_everything(self, diamond):
        routing = AsLevelRouting(diamond)
        # 1 sees some route to 4 (peer or provider kind); as OUR provider
        # it would export it to us regardless of kind.
        route = routing.exported_to_neighbor(1, Relationship.PROVIDER, 4)
        assert route is not None

    def test_peer_exports_customer_routes_only(self, diamond):
        routing = AsLevelRouting(diamond)
        # 3's route to 5 is a customer route -> exported to a peer.
        assert routing.exported_to_neighbor(3, Relationship.PEER, 5) is not None
        # 3's route to 4 is a peer route -> NOT exported to a peer.
        assert routing.exported_to_neighbor(3, Relationship.PEER, 4) is None

    def test_peer_exports_own_prefixes(self, diamond):
        routing = AsLevelRouting(diamond)
        own = routing.exported_to_neighbor(3, Relationship.PEER, 3)
        assert own is not None
        assert own.kind is RouteKind.ORIGIN
