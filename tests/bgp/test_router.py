"""Unit tests for the BGP speaker."""

import pytest

from repro.bgp.attributes import NO_EXPORT, AsPath, Route
from repro.bgp.messages import Update, Withdraw
from repro.bgp.router import BgpRouter
from repro.bgp.session import Session, SessionType
from repro.net.addressing import Prefix

PFX = Prefix.parse("203.0.113.0/24")
LOCAL_ASN = 65000


def make_router(router_id="r1", **kwargs) -> BgpRouter:
    return BgpRouter(router_id, LOCAL_ASN, **kwargs)


def ext_update(receiver: str, sender="ext1", asns=(100, 9), next_hop=None) -> Update:
    return Update(
        sender=sender,
        receiver=receiver,
        route=Route(prefix=PFX, as_path=AsPath(asns), next_hop=next_hop or sender),
    )


def wire(router: BgpRouter, peer_id: str, session_type: SessionType, peer_asn=100):
    router.add_session(
        Session(peer_id=peer_id, session_type=session_type, peer_asn=peer_asn)
    )


class TestSessions:
    def test_duplicate_session_rejected(self):
        router = make_router()
        wire(router, "a", SessionType.EBGP)
        with pytest.raises(ValueError):
            wire(router, "a", SessionType.EBGP)

    def test_unknown_sender_raises(self):
        router = make_router()
        with pytest.raises(KeyError):
            router.process(ext_update("r1", sender="stranger"))


class TestReceive:
    def test_ebgp_route_installed_and_selected(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP)
        router.process(ext_update("r1"))
        best = router.best(PFX)
        assert best is not None
        assert best.ebgp
        assert best.learned_from == "ext1"

    def test_as_loop_rejected(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP)
        router.process(ext_update("r1", asns=(100, LOCAL_ASN, 9)))
        assert router.best(PFX) is None

    def test_originator_loop_rejected(self):
        router = make_router()
        wire(router, "rr", SessionType.IBGP, peer_asn=LOCAL_ASN)
        looped = Update(
            sender="rr",
            receiver="r1",
            route=Route(
                prefix=PFX,
                as_path=AsPath((100,)),
                next_hop="r9",
                originator_id="r1",
            ),
        )
        router.process(looped)
        assert router.best(PFX) is None

    def test_local_pref_reset_on_ebgp(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP)
        update = Update(
            sender="ext1",
            receiver="r1",
            route=Route(
                prefix=PFX, as_path=AsPath((100,)), next_hop="ext1", local_pref=9999
            ),
        )
        router.process(update)
        assert router.best(PFX).local_pref == 100

    def test_implicit_withdraw_on_replace(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP)
        router.process(ext_update("r1", asns=(100, 9)))
        router.process(ext_update("r1", asns=(100, 55, 9)))
        assert router.best(PFX).as_path.asns == (100, 55, 9)
        assert len(router.adj_rib_in.routes_for(PFX)) == 1

    def test_withdraw_clears_route(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP)
        router.process(ext_update("r1"))
        router.process(Withdraw(sender="ext1", receiver="r1", prefix=PFX))
        assert router.best(PFX) is None

    def test_withdraw_unknown_is_noop(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP)
        assert router.process(Withdraw(sender="ext1", receiver="r1", prefix=PFX)) == []


class TestAdvertise:
    def test_next_hop_self_toward_ibgp(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP)
        wire(router, "rr", SessionType.IBGP, peer_asn=LOCAL_ASN)
        out = router.process(ext_update("r1"))
        ibgp_updates = [m for m in out if isinstance(m, Update) and m.receiver == "rr"]
        assert len(ibgp_updates) == 1
        assert ibgp_updates[0].route.next_hop == "r1"

    def test_as_prepend_toward_ebgp(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP, peer_asn=100)
        wire(router, "ext2", SessionType.EBGP, peer_asn=200)
        out = router.process(ext_update("r1"))
        ebgp = [m for m in out if isinstance(m, Update) and m.receiver == "ext2"]
        assert len(ebgp) == 1
        assert ebgp[0].route.as_path.asns[0] == LOCAL_ASN

    def test_split_horizon_ebgp(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP)
        out = router.process(ext_update("r1"))
        assert not [m for m in out if m.receiver == "ext1"]

    def test_no_duplicate_advertisement(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP)
        wire(router, "rr", SessionType.IBGP, peer_asn=LOCAL_ASN)
        first = router.process(ext_update("r1"))
        # Same route again: nothing new should be emitted.
        second = router.process(ext_update("r1"))
        assert first and not second

    def test_withdraw_propagates(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP)
        wire(router, "rr", SessionType.IBGP, peer_asn=LOCAL_ASN)
        router.process(ext_update("r1"))
        out = router.process(Withdraw(sender="ext1", receiver="r1", prefix=PFX))
        withdraws = [m for m in out if isinstance(m, Withdraw)]
        assert any(w.receiver == "rr" for w in withdraws)

    def test_ibgp_learned_not_readvertised_to_ibgp(self):
        router = make_router()
        wire(router, "rr1", SessionType.IBGP, peer_asn=LOCAL_ASN)
        wire(router, "rr2", SessionType.IBGP, peer_asn=LOCAL_ASN)
        update = Update(
            sender="rr1",
            receiver="r1",
            route=Route(prefix=PFX, as_path=AsPath((100,)), next_hop="r9"),
        )
        out = router.process(update)
        assert not [m for m in out if m.receiver == "rr2"]

    def test_no_export_not_sent_over_ebgp(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP, peer_asn=100)
        out = router.originate(PFX, communities=frozenset({NO_EXPORT}))
        assert not [m for m in out if m.receiver == "ext1"]

    def test_local_pref_not_leaked_over_ebgp(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP, peer_asn=100)
        wire(router, "ext2", SessionType.EBGP, peer_asn=200)
        router.process(ext_update("r1"))
        sent = router.adj_rib_out.route("ext2", PFX)
        assert sent.local_pref == 100
        assert sent.cluster_list == ()


class TestBestExternal:
    def _setup(self, enable: bool) -> tuple[BgpRouter, list]:
        router = make_router(enable_best_external=enable)
        wire(router, "ext1", SessionType.EBGP)
        wire(router, "rr", SessionType.IBGP, peer_asn=LOCAL_ASN)
        router.process(ext_update("r1"))
        # A reflected route with much higher preference displaces the
        # local external route as overall best.
        reflected = Update(
            sender="rr",
            receiver="r1",
            route=Route(
                prefix=PFX,
                as_path=AsPath((200, 9)),
                next_hop="r9",
                local_pref=3000,
                originator_id="r9",
                cluster_list=("c1",),
            ),
        )
        out = router.process(reflected)
        return router, out

    def test_without_best_external_route_is_hidden(self):
        router, out = self._setup(enable=False)
        assert not router.best(PFX).ebgp
        # The external route is withdrawn from iBGP: hidden.
        withdraws = [m for m in out if isinstance(m, Withdraw) and m.receiver == "rr"]
        assert withdraws

    def test_with_best_external_route_stays_advertised(self):
        router, out = self._setup(enable=True)
        assert not router.best(PFX).ebgp
        sent = router.adj_rib_out.route("rr", PFX)
        assert sent is not None
        assert sent.as_path.asns == (100, 9)


class TestOrigination:
    def test_originate_and_withdraw(self):
        router = make_router()
        wire(router, "ext1", SessionType.EBGP, peer_asn=100)
        out = router.originate(PFX)
        assert [m for m in out if m.receiver == "ext1"]
        assert router.best(PFX) is not None
        out = router.withdraw_origination(PFX)
        assert any(isinstance(m, Withdraw) for m in out)
        assert router.best(PFX) is None
