"""Unit tests for import/export policies."""

import pytest

from repro.bgp.attributes import NO_EXPORT, AsPath, Route
from repro.bgp.policy import (
    ChainPolicy,
    DenyPrefixImport,
    RelationshipExportPolicy,
    RelationshipImportPolicy,
    strip_ibgp_only_attributes,
)
from repro.bgp.session import Session, SessionType
from repro.net.addressing import Prefix
from repro.net.relationships import Relationship

PFX = Prefix.parse("203.0.113.0/24")

RELATIONSHIPS = {
    100: Relationship.PROVIDER,
    200: Relationship.PEER,
    300: Relationship.CUSTOMER,
}


def ebgp_session(peer_asn: int) -> Session:
    return Session(peer_id=f"x{peer_asn}", session_type=SessionType.EBGP, peer_asn=peer_asn)


def ibgp_session() -> Session:
    return Session(peer_id="rr", session_type=SessionType.IBGP, peer_asn=65000)


def route(**kwargs) -> Route:
    defaults = dict(prefix=PFX, as_path=AsPath((100, 9)), next_hop="nh")
    defaults.update(kwargs)
    return Route(**defaults)


class TestRelationshipImport:
    def test_provider_gets_low_pref(self):
        policy = RelationshipImportPolicy(RELATIONSHIPS)
        imported = policy.apply(route(), ebgp_session(100))
        assert imported.local_pref == 100
        assert "rel:provider" in imported.communities

    def test_peer_and_customer_prefs(self):
        policy = RelationshipImportPolicy(RELATIONSHIPS)
        assert policy.apply(route(), ebgp_session(200)).local_pref == 200
        assert policy.apply(route(), ebgp_session(300)).local_pref == 300

    def test_unknown_neighbor_rejected(self):
        policy = RelationshipImportPolicy(RELATIONSHIPS)
        assert policy.apply(route(), ebgp_session(999)) is None

    def test_ibgp_passthrough(self):
        policy = RelationshipImportPolicy(RELATIONSHIPS)
        original = route(local_pref=2345)
        assert policy.apply(original, ibgp_session()) is original

    def test_custom_pref_ladder(self):
        policy = RelationshipImportPolicy(
            RELATIONSHIPS, local_pref={r: 50 for r in Relationship}
        )
        assert policy.apply(route(), ebgp_session(300)).local_pref == 50


class TestRelationshipExport:
    def test_everything_to_customer(self):
        policy = RelationshipExportPolicy(RELATIONSHIPS)
        provider_route = route(communities=frozenset({"rel:provider"}))
        assert policy.apply(provider_route, ebgp_session(300)) is not None

    def test_provider_routes_not_to_peer(self):
        policy = RelationshipExportPolicy(RELATIONSHIPS)
        provider_route = route(communities=frozenset({"rel:provider"}))
        assert policy.apply(provider_route, ebgp_session(200)) is None

    def test_peer_routes_not_to_provider(self):
        policy = RelationshipExportPolicy(RELATIONSHIPS)
        peer_route = route(communities=frozenset({"rel:peer"}))
        assert policy.apply(peer_route, ebgp_session(100)) is None

    def test_customer_routes_to_everyone(self):
        policy = RelationshipExportPolicy(RELATIONSHIPS)
        customer_route = route(communities=frozenset({"rel:customer"}))
        for asn in (100, 200, 300):
            assert policy.apply(customer_route, ebgp_session(asn)) is not None

    def test_originated_to_everyone(self):
        policy = RelationshipExportPolicy(RELATIONSHIPS)
        originated = route(as_path=AsPath())
        for asn in (100, 200, 300):
            assert policy.apply(originated, ebgp_session(asn)) is not None

    def test_no_export_always_blocked(self):
        policy = RelationshipExportPolicy(RELATIONSHIPS)
        tagged = route(as_path=AsPath(), communities=frozenset({NO_EXPORT}))
        assert policy.apply(tagged, ebgp_session(300)) is None

    def test_unknown_peer_blocked(self):
        policy = RelationshipExportPolicy(RELATIONSHIPS)
        assert policy.apply(route(as_path=AsPath()), ebgp_session(999)) is None

    def test_ibgp_passthrough(self):
        policy = RelationshipExportPolicy(RELATIONSHIPS)
        original = route(communities=frozenset({"rel:provider"}))
        assert policy.apply(original, ibgp_session()) is original


class TestHelpers:
    def test_chain_policy_stops_on_reject(self):
        policy = ChainPolicy(DenyPrefixImport({PFX}), RelationshipImportPolicy(RELATIONSHIPS))
        assert policy.apply(route(), ebgp_session(100)) is None

    def test_chain_policy_applies_in_order(self):
        policy = ChainPolicy(RelationshipImportPolicy(RELATIONSHIPS))
        assert policy.apply(route(), ebgp_session(200)).local_pref == 200

    def test_strip_ibgp_only(self):
        noisy = route(
            local_pref=4242,
            originator_id="rA",
            cluster_list=("c1", "c2"),
        )
        cleaned = strip_ibgp_only_attributes(noisy)
        assert cleaned.local_pref == 100
        assert cleaned.originator_id is None
        assert cleaned.cluster_list == ()
