"""Unit tests for measurement statistics."""

import pytest

from repro.measurement.stats import (
    Ccdf,
    Cdf,
    OnlineStats,
    fraction_at_most,
    fraction_exceeding,
    percentile,
)


class TestCdf:
    def test_basic(self):
        cdf = Cdf.of([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(2.0) == 0.5
        assert cdf.at(10.0) == 1.0

    def test_quantile(self):
        cdf = Cdf.of(range(1, 101))
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(1.0) == 100

    def test_quantile_validation(self):
        cdf = Cdf.of([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf.of([])

    def test_series_monotone(self):
        cdf = Cdf.of([3.0, 1.0, 2.0])
        series = cdf.series()
        xs = [x for x, _ in series]
        ps = [p for _, p in series]
        assert xs == sorted(xs)
        assert ps == sorted(ps)
        assert ps[-1] == pytest.approx(1.0)

    def test_len(self):
        assert len(Cdf.of([1, 2, 3])) == 3


class TestCcdf:
    def test_complementarity(self):
        values = [1.0, 2.0, 3.0, 4.0]
        cdf = Cdf.of(values)
        ccdf = Ccdf.of(values)
        for x in (0.5, 1.5, 2.5, 3.5, 4.5):
            assert ccdf.at(x) == pytest.approx(1.0 - cdf.at(x))

    def test_at_threshold(self):
        ccdf = Ccdf.of([0.1, 0.2, 0.3, 0.4])
        assert ccdf.at(0.15) == pytest.approx(0.75)

    def test_series_agrees_with_at_everywhere(self):
        # One convention: series() is P(X > x), the same strict
        # inequality at() evaluates — including at every sample point.
        values = [0.1, 0.2, 0.3, 0.7, 0.9]
        ccdf = Ccdf.of(values)
        for x, p in ccdf.series():
            assert p == pytest.approx(ccdf.at(x))

    def test_ties_agree_at_last_occurrence(self):
        # Tied samples keep one series row per sample (step plotting);
        # the full step — the value at() evaluates — sits on the last row
        # of the tie.
        ccdf = Ccdf.of([0.1, 0.2, 0.2, 0.3])
        series = ccdf.series()
        assert series[2] == (pytest.approx(0.2), pytest.approx(ccdf.at(0.2)))

    def test_max_sample_has_probability_zero(self):
        # Strict P(X > x): nothing exceeds the largest sample.
        ccdf = Ccdf.of([1.0, 2.0, 5.0])
        assert ccdf.series()[-1][1] == pytest.approx(0.0)
        assert ccdf.at(5.0) == 0.0

    def test_agrees_with_fraction_exceeding(self):
        values = [0.0, 0.1, 0.15, 0.3, 0.9]
        ccdf = Ccdf.of(values)
        for t in (0.0, 0.1, 0.15, 0.2, 1.0):
            assert ccdf.at(t) == pytest.approx(fraction_exceeding(values, t))


class TestFractions:
    def test_fraction_exceeding(self):
        values = [0.0, 0.1, 0.2, 0.3]
        assert fraction_exceeding(values, 0.15) == 0.5
        assert fraction_exceeding(values, 0.3) == 0.0
        assert fraction_exceeding([], 1.0) == 0.0

    def test_fraction_at_most(self):
        values = [0.0, 0.1, 0.2, 0.3]
        assert fraction_at_most(values, 0.1) == 0.5
        assert fraction_at_most([], 1.0) == 0.0

    def test_complementary(self):
        values = [1.0, 2.0, 5.0, 7.0]
        for t in (0.0, 2.0, 6.0, 9.0):
            assert fraction_at_most(values, t) + fraction_exceeding(values, t) == 1.0


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestOnlineStats:
    def test_moments(self):
        stats = OnlineStats()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats.extend(data)
        assert stats.count == 8
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.138, rel=0.01)
        assert stats.min == 2.0
        assert stats.max == 9.0

    def test_empty(self):
        stats = OnlineStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_single_sample(self):
        stats = OnlineStats()
        stats.add(3.0)
        assert stats.mean == 3.0
        assert stats.variance == 0.0


class TestOnlineStatsMerge:
    def _reference(self, data):
        whole = OnlineStats()
        whole.extend(data)
        return whole

    def test_merge_matches_unsharded(self):
        import numpy as np

        rng = np.random.default_rng(5)
        data = rng.lognormal(0.0, 1.3, size=1000).tolist()
        whole = self._reference(data)
        merged = OnlineStats()
        for lo in range(0, len(data), 137):  # deliberately uneven shards
            shard = OnlineStats()
            shard.extend(data[lo : lo + 137])
            merged.merge(shard)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.variance == pytest.approx(whole.variance, rel=1e-9)
        assert merged.min == whole.min
        assert merged.max == whole.max

    def test_merge_empty_is_noop(self):
        stats = self._reference([1.0, 2.0, 3.0])
        before = (stats.count, stats.mean, stats.variance, stats.min, stats.max)
        stats.merge(OnlineStats())
        assert (stats.count, stats.mean, stats.variance, stats.min, stats.max) == before

    def test_merge_into_empty_copies(self):
        shard = self._reference([4.0, 6.0, 8.0])
        stats = OnlineStats()
        stats.merge(shard)
        assert stats.count == 3
        assert stats.mean == pytest.approx(6.0)
        assert stats.variance == pytest.approx(4.0)
        assert (stats.min, stats.max) == (4.0, 8.0)

    def test_merge_two_singletons(self):
        a = self._reference([1.0])
        b = self._reference([3.0])
        a.merge(b)
        assert a.mean == pytest.approx(2.0)
        assert a.variance == pytest.approx(2.0)  # unbiased: ((1-2)^2+(3-2)^2)/1
