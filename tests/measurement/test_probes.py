"""Tests for the last-mile loss probe campaign."""

import numpy as np
import pytest

from repro.geo.regions import WorldRegion
from repro.measurement.probes import LossProbeCampaign, select_hosts
from repro.measurement.scheduler import Round
from repro.net.asn import ASType


class TestSelectHosts:
    def test_buckets_filled(self, small_world):
        rng = np.random.default_rng(0)
        hosts = select_hosts(small_world.service, rng, per_type_per_region=4)
        buckets = {}
        for host in hosts:
            buckets.setdefault((host.region, host.as_type), []).append(host)
        # All 3 regions x 4 types present (the generator guarantees
        # coverage).
        assert len(buckets) == 12
        for bucket in buckets.values():
            assert len(bucket) == 4

    def test_prefix_diversity(self, small_world):
        rng = np.random.default_rng(0)
        hosts = select_hosts(small_world.service, rng, per_type_per_region=4)
        # Hosts should span several distinct prefixes.
        assert len({h.prefix for h in hosts}) > len(hosts) // 2


class TestCampaign:
    def test_probe_observation(self, small_world):
        rng = np.random.default_rng(0)
        campaign = LossProbeCampaign(small_world.service, rng)
        hosts = select_hosts(small_world.service, rng, per_type_per_region=1)
        obs = campaign.probe("AMS", hosts[0], Round(day=0, hour_cet=12.0))
        assert obs is not None
        assert obs.sent == 100
        assert 0 <= obs.lost <= 100
        assert obs.loss_percent == pytest.approx(obs.lost)

    def test_run_counts(self, small_world):
        rng = np.random.default_rng(0)
        campaign = LossProbeCampaign(small_world.service, rng)
        hosts = select_hosts(small_world.service, rng, per_type_per_region=1)[:4]
        rounds = [Round(day=0, hour_cet=float(h)) for h in (0, 6, 12, 18)]
        observations = campaign.run(["AMS", "SJS"], hosts, rounds)
        assert len(observations) == 2 * 4 * 4

    def test_path_cache_reused(self, small_world):
        rng = np.random.default_rng(0)
        campaign = LossProbeCampaign(small_world.service, rng)
        hosts = select_hosts(small_world.service, rng, per_type_per_region=1)[:1]
        campaign.probe("AMS", hosts[0], Round(day=0, hour_cet=0.0))
        campaign.probe("AMS", hosts[0], Round(day=0, hour_cet=1.0))
        assert len(campaign._path_cache) == 1

    def test_invalid_packets(self, small_world):
        with pytest.raises(ValueError):
            LossProbeCampaign(
                small_world.service, np.random.default_rng(0), packets_per_round=0
            )
