"""Tests for the last-mile loss probe campaign."""

import numpy as np
import pytest

from repro.geo.regions import WorldRegion
from repro.measurement.probes import LossProbeCampaign, ProbeObservation, select_hosts
from repro.measurement.scheduler import Round
from repro.net.asn import ASType


def _host(small_world):
    return select_hosts(small_world.service, seed=0, per_type_per_region=1)[0]


class TestSelectHosts:
    def test_buckets_filled(self, small_world):
        rng = np.random.default_rng(0)
        hosts = select_hosts(small_world.service, rng, per_type_per_region=4)
        buckets = {}
        for host in hosts:
            buckets.setdefault((host.region, host.as_type), []).append(host)
        # All 3 regions x 4 types present (the generator guarantees
        # coverage).
        assert len(buckets) == 12
        for bucket in buckets.values():
            assert len(bucket) == 4

    def test_prefix_diversity(self, small_world):
        rng = np.random.default_rng(0)
        hosts = select_hosts(small_world.service, rng, per_type_per_region=4)
        # Hosts should span several distinct prefixes.
        assert len({h.prefix for h in hosts}) > len(hosts) // 2

    def test_explicit_seed_is_deterministic(self, small_world):
        first = select_hosts(small_world.service, seed=7, per_type_per_region=2)
        second = select_hosts(small_world.service, seed=7, per_type_per_region=2)
        assert first == second
        # ...and matches an explicitly seeded generator.
        rng = np.random.default_rng(7)
        assert select_hosts(small_world.service, rng, per_type_per_region=2) == first

    def test_rng_and_seed_are_exclusive(self, small_world):
        with pytest.raises(ValueError):
            select_hosts(small_world.service, np.random.default_rng(0), seed=1)
        with pytest.raises(ValueError):
            select_hosts(small_world.service)


class TestProbeObservationBoundaries:
    def test_zero_probes_sent(self, small_world):
        obs = ProbeObservation(
            pop_code="AMS",
            host=_host(small_world),
            round=Round(day=0, hour_cet=0.0),
            sent=0,
            lost=0,
        )
        assert obs.loss_fraction == 0.0
        assert obs.loss_percent == 0.0
        assert not obs.had_loss
        assert obs.min_rtt_ms is None

    def test_total_loss(self, small_world):
        obs = ProbeObservation(
            pop_code="AMS",
            host=_host(small_world),
            round=Round(day=0, hour_cet=0.0),
            sent=100,
            lost=100,
        )
        assert obs.loss_fraction == 1.0
        assert obs.loss_percent == 100.0
        assert obs.had_loss


class TestCampaign:
    def test_probe_observation(self, small_world):
        rng = np.random.default_rng(0)
        campaign = LossProbeCampaign(small_world.service, rng)
        hosts = select_hosts(small_world.service, rng, per_type_per_region=1)
        obs = campaign.probe("AMS", hosts[0], Round(day=0, hour_cet=12.0))
        assert obs is not None
        assert obs.sent == 100
        assert 0 <= obs.lost <= 100
        assert obs.loss_percent == pytest.approx(obs.lost)
        # At least one echo came back, so the round's floor RTT is real.
        assert obs.min_rtt_ms is not None and obs.min_rtt_ms > 0.0

    def test_run_counts(self, small_world):
        rng = np.random.default_rng(0)
        campaign = LossProbeCampaign(small_world.service, rng)
        hosts = select_hosts(small_world.service, rng, per_type_per_region=1)[:4]
        rounds = [Round(day=0, hour_cet=float(h)) for h in (0, 6, 12, 18)]
        observations = campaign.run(["AMS", "SJS"], hosts, rounds)
        assert len(observations) == 2 * 4 * 4

    def test_path_cache_reused(self, small_world):
        rng = np.random.default_rng(0)
        campaign = LossProbeCampaign(small_world.service, rng)
        hosts = select_hosts(small_world.service, rng, per_type_per_region=1)[:1]
        campaign.probe("AMS", hosts[0], Round(day=0, hour_cet=0.0))
        campaign.probe("AMS", hosts[0], Round(day=0, hour_cet=1.0))
        assert len(campaign._path_cache) == 1

    def test_invalid_packets(self, small_world):
        with pytest.raises(ValueError):
            LossProbeCampaign(
                small_world.service, np.random.default_rng(0), packets_per_round=0
            )
