"""Tests for the ping campaign."""

import numpy as np
import pytest

from repro.measurement.ping import PingCampaign, PopRttMeasurement
from repro.net.addressing import Prefix


class TestPopRttMeasurement:
    def test_best_pop(self):
        m = PopRttMeasurement(prefix=Prefix.parse("10.0.0.0/20"))
        m.rtt_ms_by_pop = {"AMS": 20.0, "LON": 12.0, "SIN": 200.0}
        assert m.best_pop == "LON"
        assert m.best_rtt_ms == 12.0
        assert m.rtt_from("SIN") == 200.0
        assert m.rtt_from("SYD") is None

    def test_empty(self):
        m = PopRttMeasurement(prefix=Prefix.parse("10.0.0.0/20"))
        assert m.best_pop is None
        assert m.best_rtt_ms is None


class TestPingCampaign:
    def test_probe_prefix_covers_pops(self, small_world):
        campaign = PingCampaign(small_world.service, np.random.default_rng(0))
        prefix = small_world.topology.prefixes()[0]
        measurement = campaign.probe_prefix(prefix)
        # Every PoP has at least a transit route, so coverage is complete.
        assert len(measurement.rtt_ms_by_pop) == 11

    def test_min_rtt_tracks_geography(self, small_world):
        campaign = PingCampaign(small_world.service, np.random.default_rng(0))
        service = small_world.service
        # A prefix whose true home is in Europe should be RTT-closest to
        # a European PoP far more often than to an AP PoP.
        from repro.geo.regions import PopRegion
        from repro.vns.pop import pop_by_code

        eu_wins = 0
        count = 0
        for prefix in service.topology.prefixes():
            location = service.topology.prefix_location[prefix]
            from repro.geo.cities import region_of_point
            from repro.geo.regions import WorldRegion

            if region_of_point(location) is not WorldRegion.EUROPE:
                continue
            count += 1
            measurement = campaign.probe_prefix(prefix)
            if measurement.best_pop is None:
                continue
            if pop_by_code(measurement.best_pop).region is PopRegion.EU:
                eu_wins += 1
            if count >= 25:
                break
        assert count > 5
        assert eu_wins / count > 0.7

    def test_probe_all_skips_unreachable(self, small_world):
        campaign = PingCampaign(small_world.service, np.random.default_rng(0))
        prefixes = small_world.topology.prefixes()[:5]
        results = campaign.probe_all(prefixes)
        assert set(results) <= set(prefixes)
        assert len(results) >= 4

    def test_invalid_packets(self, small_world):
        with pytest.raises(ValueError):
            PingCampaign(
                small_world.service, np.random.default_rng(0), packets_per_probe=0
            )

    def test_pop_subset(self, small_world):
        campaign = PingCampaign(
            small_world.service, np.random.default_rng(0), pop_codes=["AMS", "SJS"]
        )
        prefix = small_world.topology.prefixes()[0]
        measurement = campaign.probe_prefix(prefix)
        assert set(measurement.rtt_ms_by_pop) <= {"AMS", "SJS"}
