"""Unit tests for measurement schedules."""

import pytest

from repro.measurement.scheduler import (
    Round,
    half_hourly_rounds,
    hourly_rounds,
    rounds_every,
    rounds_per_day,
)


class TestRounds:
    def test_half_hourly_counts(self):
        rounds = half_hourly_rounds(days=2)
        assert len(rounds) == 2 * 48

    def test_hourly_counts(self):
        assert len(hourly_rounds(days=1)) == 24

    def test_hours_wrap(self):
        rounds = rounds_every(90.0, days=1)
        assert all(0.0 <= r.hour_cet < 24.0 for r in rounds)

    def test_absolute_hours_monotone_within_day(self):
        rounds = rounds_every(60.0, days=2)
        absolute = [r.absolute_hours for r in rounds]
        assert absolute == sorted(absolute)

    def test_start_offset(self):
        rounds = rounds_every(60.0, days=1, start_hour=6.0)
        assert rounds[0].hour_cet == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            rounds_every(0.0, days=1)
        with pytest.raises(ValueError):
            rounds_every(10.0, days=-1)

    def test_every_ten_minutes_is_paper_rate(self):
        # Sec. 5.2: every 10 minutes => 144 rounds/day.
        assert len(rounds_every(10.0, days=1)) == 144

    def test_round_dataclass(self):
        r = Round(day=2, hour_cet=3.0)
        assert r.absolute_hours == 51.0


class TestRoundsPerDay:
    def test_divisible_periods_exact(self):
        assert rounds_per_day(30.0) == 48
        assert rounds_per_day(10.0) == 144
        assert rounds_per_day(1440.0) == 1

    def test_non_divisible_keeps_last_in_day_round(self):
        # 100-minute period: rounds at 0:00, 1:40, ..., 23:20 — fifteen
        # rounds start inside the day.  int(round(1440/100)) == 14 was
        # the regression: the 23:20 round silently vanished.
        assert rounds_per_day(100.0) == 15

    def test_non_divisible_never_invents_a_round(self):
        # 7-hour period: 0:00, 7:00, 14:00, 21:00 — four rounds; the
        # next would start at 28:00, outside the day.
        assert rounds_per_day(420.0) == 4

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            rounds_per_day(0.0)
        with pytest.raises(ValueError):
            rounds_per_day(-30.0)


class TestStartHourWrap:
    def test_wrapped_rounds_attributed_to_next_day(self):
        # Anchored at 22:00, a 90-minute period crosses midnight within
        # the first day's slots; post-midnight rounds belong to day 1.
        rounds = rounds_every(90.0, days=1, start_hour=22.0)
        assert len(rounds) == 16
        assert rounds[0] == Round(day=0, hour_cet=22.0)
        assert rounds[1] == Round(day=0, hour_cet=23.5)
        assert rounds[2] == Round(day=1, hour_cet=1.0)

    def test_absolute_hours_monotone_with_start_hour(self):
        # The regression: hour % 24 without the day bump made
        # absolute_hours jump backwards at every midnight wrap.
        rounds = rounds_every(100.0, days=3, start_hour=18.0)
        absolute = [r.absolute_hours for r in rounds]
        assert absolute == sorted(absolute)

    def test_non_divisible_round_count_pinned(self):
        assert len(rounds_every(100.0, days=2)) == 2 * 15
        assert [r.hour_cet for r in rounds_every(100.0, days=1)][-1] == pytest.approx(
            23.0 + 20.0 / 60.0
        )

    def test_start_hour_validation(self):
        with pytest.raises(ValueError):
            rounds_every(60.0, days=1, start_hour=24.0)
        with pytest.raises(ValueError):
            rounds_every(60.0, days=1, start_hour=-0.5)
