"""Unit tests for measurement schedules."""

import pytest

from repro.measurement.scheduler import (
    Round,
    half_hourly_rounds,
    hourly_rounds,
    rounds_every,
)


class TestRounds:
    def test_half_hourly_counts(self):
        rounds = half_hourly_rounds(days=2)
        assert len(rounds) == 2 * 48

    def test_hourly_counts(self):
        assert len(hourly_rounds(days=1)) == 24

    def test_hours_wrap(self):
        rounds = rounds_every(90.0, days=1)
        assert all(0.0 <= r.hour_cet < 24.0 for r in rounds)

    def test_absolute_hours_monotone_within_day(self):
        rounds = rounds_every(60.0, days=2)
        absolute = [r.absolute_hours for r in rounds]
        assert absolute == sorted(absolute)

    def test_start_offset(self):
        rounds = rounds_every(60.0, days=1, start_hour=6.0)
        assert rounds[0].hour_cet == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            rounds_every(0.0, days=1)
        with pytest.raises(ValueError):
            rounds_every(10.0, days=-1)

    def test_every_ten_minutes_is_paper_rate(self):
        # Sec. 5.2: every 10 minutes => 144 rounds/day.
        assert len(rounds_every(10.0, days=1)) == 144

    def test_round_dataclass(self):
        r = Round(day=2, hour_cet=3.0)
        assert r.absolute_hours == 51.0
