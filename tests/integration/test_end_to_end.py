"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro.dataplane.transmit import simulate_stream
from repro.media.client import InstrumentedClient
from repro.media.codec import PROFILE_1080P
from repro.media.sip import EchoServer
from repro.media.turn import TurnService
from repro.net.asn import ASType
from repro.vns.pop import POPS


class TestFullPipeline:
    def test_world_converged(self, small_world):
        network = small_world.service.network
        assert network.engine.converged
        assert network.total_loc_rib_size() > 0

    def test_every_prefix_routable_from_every_pop(self, small_world):
        service = small_world.service
        prefixes = service.topology.prefixes()
        missing = 0
        for prefix in prefixes:
            for pop in ("AMS", "SJS", "SIN"):
                if service.egress_decision(pop, prefix) is None:
                    missing += 1
        assert missing <= 0.02 * len(prefixes) * 3

    def test_vns_beats_internet_for_long_distance_calls(self, small_world):
        """The headline claim: VNS reduces loss for long-distance calls."""
        service = small_world.service
        rng = np.random.default_rng(99)
        topology = service.topology
        # One EU user, one AP user (edge networks).
        eu = next(
            s
            for s in topology.ases.values()
            if s.as_type is ASType.EC
            and s.home.city.region.value == "Europe"
            and s.prefixes
        )
        ap = next(
            s
            for s in topology.ases.values()
            if s.as_type is ASType.EC
            and s.home.city.region.value == "Asia Pacific"
            and s.prefixes
        )
        call = service.call_paths(
            eu.prefixes[0],
            topology.host_location(eu.prefixes[0], rng),
            ap.prefixes[0],
            topology.host_location(ap.prefixes[0], rng),
        )
        assert call is not None

        def mean_loss(path) -> float:
            losses = [
                simulate_stream(path, rng=rng, hour_cet=float(h % 24)).loss_percent
                for h in range(60)
            ]
            return float(np.mean(losses))

        loss_vns = mean_loss(call.via_vns)
        loss_internet = mean_loss(call.via_internet)
        assert loss_vns < loss_internet

    def test_turn_plus_media_session(self, small_world):
        """TURN allocation, SIP setup and media over the allocated path."""
        service = small_world.service
        rng = np.random.default_rng(5)
        turn = TurnService(service)
        user = next(
            s
            for s in service.topology.ases.values()
            if s.as_type is ASType.EC and s.prefixes
        )
        allocation, pop = turn.request("alice", user.asn, user.home.location)
        assert allocation is not None
        client = InstrumentedClient("alice", rng=rng)
        server = EchoServer("sip:echo@vns", pop.code)
        last_mile = service.last_mile_path(
            user.prefixes[0], user.home.location, pop.code
        )
        measurement = client.run_session(server, last_mile, PROFILE_1080P)
        assert measurement is not None
        assert measurement.outbound.n_slots == 24

    def test_before_after_share_topology(self, small_world_pair):
        before = small_world_pair.before
        after = small_world_pair.service
        assert before.topology is after.topology
        assert before.routing is after.routing

    def test_geo_on_vs_off_disagree(self, small_world_pair):
        """The two deployments must produce materially different egress
        choices — otherwise Fig. 4/5 would be vacuous."""
        after = small_world_pair.service
        before = small_world_pair.before
        differing = 0
        total = 0
        for prefix in after.topology.prefixes():
            d_after = after.egress_decision("LON", prefix)
            d_before = before.egress_decision("LON", prefix)
            if d_after is None or d_before is None:
                continue
            total += 1
            differing += d_after.egress_pop != d_before.egress_pop
        assert total > 0
        assert differing / total > 0.3

    def test_rtt_sanity_across_pops(self, small_world):
        """Internal RTTs roughly match geography (AMS-FRA short,
        AMS-SYD long)."""
        service = small_world.service
        short = service.vns_internal_path("AMS", "FRA").rtt_ms()
        long = service.vns_internal_path("AMS", "SYD").rtt_ms()
        assert short < 15.0
        assert 120.0 < long < 350.0

    def test_loc_ribs_agree_on_egress_pop(self, small_world):
        """All border routers resolve the same egress PoP per prefix —
        no forwarding loops inside VNS."""
        service = small_world.service
        network = service.network
        for prefix in service.topology.prefixes()[:50]:
            egresses = set()
            for pop in POPS:
                decision = network.egress_decision(pop.code, prefix)
                if decision is not None:
                    egresses.add(decision.egress_pop)
            assert len(egresses) <= 1, str(prefix)
