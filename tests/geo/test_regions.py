"""Unit tests for the region taxonomy and time conversions."""

import pytest

from repro.geo.regions import (
    POP_REGION_FOR_WORLD_REGION,
    REGION_UTC_OFFSET_HOURS,
    PopRegion,
    WorldRegion,
    cet_to_local_hour,
    local_hour_to_cet,
)


class TestTaxonomy:
    def test_seven_world_regions(self):
        assert len(WorldRegion) == 7

    def test_four_pop_regions(self):
        assert len(PopRegion) == 4

    def test_every_world_region_has_a_pop_region(self):
        for region in WorldRegion:
            assert region in POP_REGION_FOR_WORLD_REGION

    def test_every_world_region_has_utc_offset(self):
        for region in WorldRegion:
            assert region in REGION_UTC_OFFSET_HOURS

    def test_geographic_sanity(self):
        assert POP_REGION_FOR_WORLD_REGION[WorldRegion.EUROPE] is PopRegion.EU
        assert POP_REGION_FOR_WORLD_REGION[WorldRegion.OCEANIA] is PopRegion.OC
        assert (
            POP_REGION_FOR_WORLD_REGION[WorldRegion.NORTH_CENTRAL_AMERICA]
            is PopRegion.NA
        )
        assert POP_REGION_FOR_WORLD_REGION[WorldRegion.ASIA_PACIFIC] is PopRegion.AP


class TestTimeConversion:
    def test_europe_is_cet(self):
        # EU offset is +1, same as CET: identity conversion.
        assert local_hour_to_cet(14.0, WorldRegion.EUROPE) == pytest.approx(14.0)

    def test_round_trip(self):
        for region in WorldRegion:
            for hour in (0.0, 7.5, 14.0, 23.0):
                there = cet_to_local_hour(hour, region)
                back = local_hour_to_cet(there, region)
                assert back == pytest.approx(hour % 24.0)

    def test_ap_business_hours_map_to_cet_night(self):
        # 9am in AP (UTC+8) is 2am CET — the paper's Fig. 12 observation
        # that AP loss "climbs up as the day starts in AP and drops as it
        # ends around 3PM CET".
        assert local_hour_to_cet(9.0, WorldRegion.ASIA_PACIFIC) == pytest.approx(2.0)
        assert local_hour_to_cet(22.0, WorldRegion.ASIA_PACIFIC) == pytest.approx(15.0)

    def test_wraparound(self):
        assert cet_to_local_hour(23.0, WorldRegion.ASIA_PACIFIC) == pytest.approx(6.0)
