"""Unit tests for GeoIP error models."""

import numpy as np
import pytest

from repro.geo.coords import GeoPoint
from repro.geo.errors import (
    CountryCentroidError,
    MissingEntryError,
    RandomNoiseError,
    StaleWhoisError,
    apply_error_models,
)
from repro.geo.geoip import GeoIPDatabase
from repro.net.addressing import Prefix


def make_db(n_ru: int = 5, n_in: int = 5, n_other: int = 10) -> GeoIPDatabase:
    db = GeoIPDatabase()
    base = 0
    for i in range(n_ru):
        db.register(Prefix(network=base + (i << 12), length=20), GeoPoint(55.76, 37.62), "RU")
    base = 1 << 24
    for i in range(n_in):
        db.register(Prefix(network=base + (i << 12), length=20), GeoPoint(19.08, 72.88), "IN")
    base = 2 << 24
    for i in range(n_other):
        db.register(Prefix(network=base + (i << 12), length=20), GeoPoint(52.37, 4.90), "NL")
    return db


class TestCountryCentroid:
    def test_all_ru_collapsed(self):
        db = make_db()
        affected = CountryCentroidError("RU").apply(db, np.random.default_rng(0))
        assert len(affected) == 5
        for prefix in affected:
            entry = db.lookup(prefix)
            assert entry.location == GeoPoint(61.52, 105.32)
            assert entry.error_km > 3000

    def test_fraction(self):
        db = make_db(n_ru=10)
        affected = CountryCentroidError("RU", fraction=0.5).apply(
            db, np.random.default_rng(0)
        )
        assert len(affected) == 5

    def test_unknown_country_needs_centroid(self):
        with pytest.raises(ValueError):
            CountryCentroidError("ZZ")

    def test_explicit_centroid(self):
        model = CountryCentroidError("ZZ", centroid=GeoPoint(0, 0))
        db = make_db()
        assert model.apply(db, np.random.default_rng(0)) == []


class TestStaleWhois:
    def test_indian_prefixes_move_to_canada(self):
        db = make_db()
        affected = StaleWhoisError("IN", "CA").apply(db, np.random.default_rng(0))
        assert len(affected) == 5
        for prefix in affected:
            entry = db.lookup(prefix)
            assert entry.country == "CA"
            assert entry.location == GeoPoint(56.13, -106.35)

    def test_true_country_untouched_elsewhere(self):
        db = make_db()
        StaleWhoisError("IN", "CA").apply(db, np.random.default_rng(0))
        assert len(db.prefixes_in_country("NL")) == 10


class TestRandomNoise:
    def test_displaces_fraction(self):
        db = make_db()
        affected = RandomNoiseError(mean_km=50.0, fraction=0.5).apply(
            db, np.random.default_rng(0)
        )
        assert len(affected) == 10
        displaced = [db.lookup(p).error_km for p in affected]
        assert all(err >= 0 for err in displaced)
        assert any(err > 1.0 for err in displaced)

    def test_mean_magnitude(self):
        db = make_db(n_ru=0, n_in=0, n_other=400)
        RandomNoiseError(mean_km=50.0, fraction=1.0).apply(db, np.random.default_rng(0))
        assert db.mean_error_km() == pytest.approx(50.0, rel=0.25)

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            RandomNoiseError(mean_km=-1.0)


class TestMissingEntry:
    def test_drops_entries(self):
        db = make_db()
        MissingEntryError(fraction=0.25).apply(db, np.random.default_rng(0))
        assert len(db) == 15


class TestComposition:
    def test_apply_error_models_report(self):
        db = make_db()
        report = apply_error_models(
            db,
            [CountryCentroidError("RU"), StaleWhoisError("IN", "CA")],
            np.random.default_rng(0),
        )
        assert len(report["CountryCentroidError"]) == 5
        assert len(report["StaleWhoisError"]) == 5

    def test_invalid_fraction(self):
        db = make_db()
        with pytest.raises(ValueError):
            MissingEntryError(fraction=1.5).apply(db, np.random.default_rng(0))
