"""Unit tests for the GeoIP database."""

import pytest

from repro.geo.coords import GeoPoint
from repro.geo.geoip import GeoIPDatabase
from repro.net.addressing import Prefix


@pytest.fixture
def db() -> GeoIPDatabase:
    database = GeoIPDatabase()
    database.register(Prefix.parse("10.0.0.0/16"), GeoPoint(52.37, 4.90), "NL")
    database.register(Prefix.parse("10.1.0.0/16"), GeoPoint(1.35, 103.82), "SG")
    return database


class TestRegistration:
    def test_len(self, db):
        assert len(db) == 2

    def test_contains(self, db):
        assert Prefix.parse("10.0.0.0/16") in db
        assert Prefix.parse("10.9.0.0/16") not in db

    def test_duplicate_rejected(self, db):
        with pytest.raises(ValueError):
            db.register(Prefix.parse("10.0.0.0/16"), GeoPoint(0, 0), "XX")

    def test_lookup_returns_entry(self, db):
        entry = db.lookup(Prefix.parse("10.0.0.0/16"))
        assert entry is not None
        assert entry.country == "NL"
        assert entry.error_km == 0.0

    def test_lookup_miss_returns_none(self, db):
        assert db.lookup(Prefix.parse("10.9.0.0/16")) is None


class TestOverride:
    def test_override_moves_reported_location(self, db):
        prefix = Prefix.parse("10.0.0.0/16")
        db.override(prefix, location=GeoPoint(61.52, 105.32))
        entry = db.lookup(prefix)
        assert entry.error_km > 3000
        # Ground truth is untouched.
        assert entry.true_location == GeoPoint(52.37, 4.90)

    def test_override_country(self, db):
        prefix = Prefix.parse("10.0.0.0/16")
        db.override(prefix, country="RU")
        assert db.lookup(prefix).country == "RU"

    def test_override_unknown_raises(self, db):
        with pytest.raises(KeyError):
            db.override(Prefix.parse("10.9.0.0/16"), country="XX")


class TestQueries:
    def test_prefixes_in_country(self, db):
        assert db.prefixes_in_country("SG") == (Prefix.parse("10.1.0.0/16"),)

    def test_remove(self, db):
        db.remove(Prefix.parse("10.0.0.0/16"))
        assert len(db) == 1

    def test_mean_error_starts_zero(self, db):
        assert db.mean_error_km() == 0.0

    def test_fraction_within(self, db):
        assert db.fraction_within_km(1.0) == 1.0
        db.override(Prefix.parse("10.0.0.0/16"), location=GeoPoint(0, 0))
        assert db.fraction_within_km(1.0) == 0.5

    def test_empty_database_stats(self):
        empty = GeoIPDatabase()
        assert empty.mean_error_km() == 0.0
        assert empty.fraction_within_km(10.0) == 1.0
