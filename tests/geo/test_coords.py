"""Unit tests for spherical geodesy."""

import math

import pytest

from repro.geo.coords import (
    EARTH_RADIUS_KM,
    GeoPoint,
    destination_point,
    great_circle_km,
    initial_bearing_deg,
    midpoint,
)


class TestGeoPoint:
    def test_valid_construction(self):
        point = GeoPoint(52.37, 4.90)
        assert point.lat == 52.37
        assert point.lon == 4.90

    @pytest.mark.parametrize("lat", [-90.0, 0.0, 90.0])
    def test_boundary_latitudes(self, lat):
        GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lat", [-90.01, 91.0, 180.0])
    def test_invalid_latitude(self, lat):
        with pytest.raises(ValueError):
            GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lon", [-180.01, 181.0, 360.0])
    def test_invalid_longitude(self, lon):
        with pytest.raises(ValueError):
            GeoPoint(0.0, lon)

    def test_str_hemispheres(self):
        assert str(GeoPoint(10.0, -20.0)) == "10.0000N,20.0000W"
        assert str(GeoPoint(-10.0, 20.0)) == "10.0000S,20.0000E"


class TestGreatCircle:
    def test_zero_distance(self):
        point = GeoPoint(10.0, 20.0)
        assert great_circle_km(point, point) == 0.0

    def test_symmetry(self):
        a = GeoPoint(52.37, 4.90)
        b = GeoPoint(1.35, 103.82)
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))

    def test_known_distance_amsterdam_singapore(self):
        a = GeoPoint(52.37, 4.90)
        b = GeoPoint(1.35, 103.82)
        # Published distance is ~10,500 km.
        assert great_circle_km(a, b) == pytest.approx(10_500, rel=0.02)

    def test_quarter_circumference(self):
        equator = GeoPoint(0.0, 0.0)
        pole = GeoPoint(90.0, 0.0)
        expected = math.pi * EARTH_RADIUS_KM / 2
        assert great_circle_km(equator, pole) == pytest.approx(expected)

    def test_antipodal_is_half_circumference(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        expected = math.pi * EARTH_RADIUS_KM
        assert great_circle_km(a, b) == pytest.approx(expected)

    def test_dateline_wrap(self):
        west = GeoPoint(0.0, 179.5)
        east = GeoPoint(0.0, -179.5)
        assert great_circle_km(west, east) < 120.0


class TestBearing:
    def test_due_north(self):
        assert initial_bearing_deg(GeoPoint(0, 0), GeoPoint(10, 0)) == pytest.approx(0.0)

    def test_due_east(self):
        assert initial_bearing_deg(GeoPoint(0, 0), GeoPoint(0, 10)) == pytest.approx(90.0)

    def test_due_south(self):
        assert initial_bearing_deg(GeoPoint(10, 0), GeoPoint(0, 0)) == pytest.approx(180.0)

    def test_range(self):
        bearing = initial_bearing_deg(GeoPoint(10, 10), GeoPoint(-20, -30))
        assert 0.0 <= bearing < 360.0


class TestDestinationPoint:
    def test_zero_distance_is_identity(self):
        origin = GeoPoint(45.0, 45.0)
        result = destination_point(origin, 123.0, 0.0)
        assert result.lat == pytest.approx(origin.lat)
        assert result.lon == pytest.approx(origin.lon)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            destination_point(GeoPoint(0, 0), 0.0, -1.0)

    def test_round_trip_distance(self):
        origin = GeoPoint(52.37, 4.90)
        out = destination_point(origin, 70.0, 500.0)
        assert great_circle_km(origin, out) == pytest.approx(500.0, rel=1e-6)

    def test_longitude_normalised(self):
        # Travelling east across the dateline must stay in [-180, 180].
        origin = GeoPoint(0.0, 179.0)
        out = destination_point(origin, 90.0, 300.0)
        assert -180.0 <= out.lon <= 180.0


class TestMidpoint:
    def test_midpoint_equidistant(self):
        a = GeoPoint(52.37, 4.90)
        b = GeoPoint(40.71, -74.01)
        mid = midpoint(a, b)
        assert great_circle_km(a, mid) == pytest.approx(
            great_circle_km(b, mid), rel=1e-6
        )

    def test_midpoint_on_path(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 90.0)
        mid = midpoint(a, b)
        assert mid.lat == pytest.approx(0.0, abs=1e-9)
        assert mid.lon == pytest.approx(45.0)
