"""Unit tests for the gazetteer."""

import pytest

from repro.geo.cities import (
    CITIES,
    cities_in_pop_region,
    cities_in_world_region,
    city_by_name,
    nearest_city,
    region_of_point,
)
from repro.geo.coords import GeoPoint
from repro.geo.regions import PopRegion, WorldRegion


class TestGazetteer:
    def test_unique_names(self):
        names = [city.name for city in CITIES]
        assert len(names) == len(set(names))

    def test_positive_weights(self):
        assert all(city.weight > 0 for city in CITIES)

    def test_every_world_region_covered(self):
        for region in WorldRegion:
            assert cities_in_world_region(region), f"no cities in {region}"

    def test_pop_cities_present(self):
        for name in (
            "Oslo",
            "Amsterdam",
            "Frankfurt",
            "London",
            "Atlanta",
            "Ashburn",
            "San Jose",
            "Hong Kong",
            "Singapore",
            "Tokyo",
            "Sydney",
        ):
            city_by_name(name)

    def test_unknown_city_raises(self):
        with pytest.raises(KeyError):
            city_by_name("Atlantis")

    def test_pop_region_mapping(self):
        assert city_by_name("Sydney").pop_region is PopRegion.OC
        assert city_by_name("London").pop_region is PopRegion.EU
        assert city_by_name("Tokyo").pop_region is PopRegion.AP

    def test_cities_in_pop_region_consistent(self):
        for region in PopRegion:
            for city in cities_in_pop_region(region):
                assert city.pop_region is region


class TestReverseGeocoding:
    def test_exact_city_location(self):
        amsterdam = city_by_name("Amsterdam")
        assert nearest_city(amsterdam.location).name == "Amsterdam"

    def test_nearby_point(self):
        # A point 30 km from Amsterdam still maps to Amsterdam (nearest
        # other gazetteer city, Brussels, is ~170 km away).
        point = GeoPoint(52.1, 4.9)
        assert nearest_city(point).name == "Amsterdam"

    def test_region_of_point(self):
        assert region_of_point(GeoPoint(48.0, 11.0)) is WorldRegion.EUROPE
        assert region_of_point(GeoPoint(-30.0, 150.0)) is WorldRegion.OCEANIA
