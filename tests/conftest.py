"""Shared fixtures: deterministic RNGs and session-scoped worlds.

Building a world (synthetic Internet + converged VNS) takes a few seconds,
so the expensive fixtures are session-scoped and shared; tests must not
mutate them.  Tests that need mutation build their own tiny worlds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import World, build_world
from repro.net.topology import InternetTopology, TopologyConfig, generate_topology


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_topology() -> InternetTopology:
    """A very small Internet for unit tests (shared, do not mutate)."""
    return generate_topology(
        TopologyConfig(n_ltp=3, n_stp=8, n_cahp=10, n_ec=12),
        np.random.default_rng(7),
    )


@pytest.fixture(scope="session")
def small_world() -> World:
    """A small world with geo routing on and exact GeoIP (shared)."""
    return build_world("small", seed=42)


@pytest.fixture(scope="session")
def small_world_with_errors() -> World:
    """A small world with the paper's GeoIP error models injected."""
    return build_world("small", seed=42, geoip_errors=True)


@pytest.fixture(scope="session")
def small_world_pair(small_world: World) -> World:
    """The small world with its hot-potato "before" deployment built."""
    small_world.require_before()
    return small_world
