"""Columnar stream-simulation kernel: identity, determinism, accounting.

:func:`repro.dataplane.transmit.simulate_stream` is the distribution
oracle: every columnar stream must be distributed exactly as one scalar
call over the same path.  On top of that the kernel makes promises the
scalar path never did — counter-based determinism independent of spec
order, chunking and co-resident specs — which are asserted bitwise.
"""

import numpy as np
import pytest

from repro.dataplane import columnar
from repro.dataplane.columnar import (
    StreamColumnSpec,
    _binom_quantile,
    _group_rows,
    _stream_keys,
    simulate_stream_columns,
)
from repro.dataplane.link import PathSegment, SegmentKind, degrade_segment
from repro.dataplane.path import DataPath
from repro.dataplane.transmit import simulate_stream
from repro.geo.cities import city_by_name
from repro.net.asn import ASType

pytestmark = pytest.mark.skipif(
    not columnar.available(), reason="columnar kernel needs scipy"
)

AMS = city_by_name("Amsterdam").location
SIN = city_by_name("Singapore").location

#: an arbitrary 128-bit group signature split into two words.
DIGEST = (0x0123456789ABCDEF, 0xFEDCBA9876543210)
OTHER_DIGEST = (0x1111111111111111, 0x2222222222222222)


def access_only_path() -> DataPath:
    return DataPath(
        segments=[
            PathSegment(kind=SegmentKind.ACCESS, start=AMS, end=AMS, as_type=ASType.EC)
        ],
        description="access",
    )


def transit_long_path() -> DataPath:
    return DataPath(
        segments=[
            PathSegment(kind=SegmentKind.TRANSIT, start=AMS, end=SIN, owner_type=ASType.LTP)
        ],
        description="transit-long",
    )


def transit_short_path() -> DataPath:
    return DataPath(
        segments=[
            PathSegment(kind=SegmentKind.TRANSIT, start=AMS, end=AMS, owner_type=ASType.STP)
        ],
        description="transit-short",
    )


def vns_path() -> DataPath:
    return DataPath(
        segments=[PathSegment(kind=SegmentKind.VNS_L2, start=AMS, end=SIN)],
        description="vns",
    )


def peering_path() -> DataPath:
    return DataPath(
        segments=[PathSegment(kind=SegmentKind.PEERING, start=AMS, end=AMS)],
        description="peering",
    )


def mixed_path() -> DataPath:
    return DataPath(
        segments=[
            PathSegment(kind=SegmentKind.ACCESS, start=AMS, end=AMS, as_type=ASType.EC),
            PathSegment(kind=SegmentKind.PEERING, start=AMS, end=AMS),
            PathSegment(kind=SegmentKind.TRANSIT, start=AMS, end=SIN, owner_type=ASType.LTP),
            PathSegment(kind=SegmentKind.ACCESS, start=SIN, end=SIN, as_type=ASType.CAHP),
        ],
        description="mixed",
    )


def degraded_transit_path(extra_loss: float = 0.04) -> DataPath:
    base = transit_long_path()
    return DataPath(
        segments=[degrade_segment(base.segments[0], extra_loss=extra_loss)],
        description="degraded",
    )


def columnar_batch(path, n, *, duration_s=120.0, hour_cet=20.0, salt=0, **kwargs):
    spec = StreamColumnSpec(
        path=path,
        n_streams=n,
        duration_s=duration_s,
        hour_cet=hour_cet,
        digest=DIGEST,
        salt=salt,
    )
    return simulate_stream_columns([spec], **kwargs)[0]


def scalar_batch(path, n, *, duration_s=120.0, hour_cet=20.0, seed=999):
    rng = np.random.default_rng(seed)
    return [
        simulate_stream(path, duration_s=duration_s, hour_cet=hour_cet, rng=rng)
        for _ in range(n)
    ]


def assert_same_mean(columnar_values, scalar_values) -> None:
    """Means agree within 4 combined standard errors (both samples finite)."""
    c = np.asarray(columnar_values, dtype=np.float64)
    s = np.asarray(scalar_values, dtype=np.float64)
    stderr = np.sqrt(c.var() / c.size + s.var() / s.size)
    assert abs(c.mean() - s.mean()) < 4 * max(stderr, 1e-9)


def assert_identical(a, b) -> None:
    """Two per-spec result lists are bitwise identical, stream by stream."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.packets_sent == rb.packets_sent
        assert np.array_equal(ra.slot_losses, rb.slot_losses)
        assert ra.jitter_p95_ms == rb.jitter_p95_ms
        assert ra.rtt_ms == rb.rtt_ms


class TestDeterminism:
    def test_repeat_run_bitwise_identical(self):
        a = columnar_batch(transit_long_path(), 64)
        b = columnar_batch(transit_long_path(), 64)
        assert_identical(a, b)

    def test_chunking_does_not_change_results(self):
        path = transit_long_path()
        whole = columnar_batch(path, 50)
        chunked = columnar_batch(path, 50, max_rows_per_pass=7)
        assert_identical(whole, chunked)

    def test_spec_order_does_not_change_results(self):
        a = StreamColumnSpec(transit_long_path(), 20, 120.0, 20.0, DIGEST, salt=0)
        b = StreamColumnSpec(vns_path(), 30, 120.0, 20.0, OTHER_DIGEST, salt=1)
        ab = simulate_stream_columns([a, b])
        ba = simulate_stream_columns([b, a])
        assert_identical(ab[0], ba[1])
        assert_identical(ab[1], ba[0])

    def test_co_resident_specs_do_not_change_results(self):
        # The detour contract: a group's baseline transports draw the
        # same streams whether or not another spec shares the pass.
        a = StreamColumnSpec(transit_long_path(), 20, 120.0, 20.0, DIGEST, salt=0)
        b = StreamColumnSpec(mixed_path(), 40, 120.0, 20.0, OTHER_DIGEST, salt=2)
        alone = simulate_stream_columns([a])[0]
        together = simulate_stream_columns([a, b])[0]
        assert_identical(alone, together)

    def test_salt_separates_transports(self):
        vns_leg = columnar_batch(transit_long_path(), 50, salt=0)
        inet_leg = columnar_batch(transit_long_path(), 50, salt=1)
        assert [r.jitter_p95_ms for r in vns_leg] != [r.jitter_p95_ms for r in inet_leg]

    def test_digest_separates_groups(self):
        a = StreamColumnSpec(transit_long_path(), 50, 120.0, 20.0, DIGEST)
        b = StreamColumnSpec(transit_long_path(), 50, 120.0, 20.0, OTHER_DIGEST)
        ra, rb = simulate_stream_columns([a, b])
        assert [r.jitter_p95_ms for r in ra] != [r.jitter_p95_ms for r in rb]


class TestAccounting:
    def test_slot_accounting(self):
        results = columnar_batch(transit_long_path(), 8)
        assert len(results) == 8
        for r in results:
            assert r.n_slots == 24
            assert r.packets_sent == 24 * 2100
            assert 0 <= r.packets_lost <= r.packets_sent
            assert r.lossy_slots <= r.n_slots

    def test_partial_final_slot_matches_scalar(self, rng):
        # 12 s at 420 pps: 3 slots, the last carrying 840 packets.
        scalar = simulate_stream(transit_long_path(), duration_s=12.0, rng=rng)
        results = columnar_batch(transit_long_path(), 4, duration_s=12.0)
        for r in results:
            assert r.n_slots == scalar.n_slots == 3
            assert r.packets_sent == scalar.packets_sent == 2 * 2100 + 840

    def test_lossless_peering(self):
        path = peering_path()
        for r in columnar_batch(path, 16):
            assert r.packets_lost == 0
            assert r.lossy_slots == 0
            assert r.rtt_ms == path.rtt_ms()

    def test_rtt_matches_path(self):
        path = mixed_path()
        for r in columnar_batch(path, 4):
            assert r.rtt_ms == path.rtt_ms()

    def test_mixed_slot_counts_in_one_call(self):
        a = StreamColumnSpec(transit_long_path(), 10, 120.0, 20.0, DIGEST, salt=0)
        b = StreamColumnSpec(transit_long_path(), 10, 60.0, 20.0, DIGEST, salt=1)
        ra, rb = simulate_stream_columns([a, b])
        assert all(r.n_slots == 24 for r in ra)
        assert all(r.n_slots == 12 for r in rb)


class TestDistributionIdentity:
    """Columnar streams vs the scalar oracle, per segment kind."""

    N = 400

    @pytest.mark.parametrize(
        "make_path",
        [
            access_only_path,
            transit_long_path,
            transit_short_path,
            vns_path,
            mixed_path,
        ],
        ids=["access", "transit-long", "transit-short", "vns-l2", "mixed"],
    )
    def test_loss_and_jitter_match_oracle(self, make_path):
        path = make_path()
        col = columnar_batch(path, self.N)
        ref = scalar_batch(path, self.N)
        assert_same_mean(
            [r.loss_percent for r in col], [r.loss_percent for r in ref]
        )
        assert_same_mean(
            [r.jitter_p95_ms for r in col], [r.jitter_p95_ms for r in ref]
        )
        assert_same_mean([r.lossy_slots for r in col], [r.lossy_slots for r in ref])

    def test_degraded_segment_matches_oracle(self):
        path = degraded_transit_path(extra_loss=0.04)
        col = columnar_batch(path, self.N)
        ref = scalar_batch(path, self.N)
        assert_same_mean(
            [r.loss_percent for r in col], [r.loss_percent for r in ref]
        )
        # The injected impairment dominates: every stream loses packets.
        assert all(r.packets_lost > 0 for r in col)

    def test_diurnal_parameters_respected(self):
        # The hour keys the per-segment parameter resolution in both
        # kernels: identity must hold at peak and off-peak alike, and
        # changing the hour must actually change the columnar draws'
        # input rates (same counter keys, different parameters).
        path = transit_long_path()
        peak_c = columnar_batch(path, self.N, hour_cet=20.5)
        off_c = columnar_batch(path, self.N, hour_cet=4.5)
        assert [r.jitter_p95_ms for r in peak_c] != [r.jitter_p95_ms for r in off_c]
        assert_same_mean(
            [r.loss_percent for r in peak_c],
            [r.loss_percent for r in scalar_batch(path, self.N, hour_cet=20.5)],
        )
        assert_same_mean(
            [r.loss_percent for r in off_c],
            [r.loss_percent for r in scalar_batch(path, self.N, hour_cet=4.5)],
        )


class TestGuards:
    def test_empty_specs(self):
        assert simulate_stream_columns([]) == []

    def test_non_positive_streams(self):
        spec = StreamColumnSpec(transit_long_path(), 0, 120.0, 20.0, DIGEST)
        with pytest.raises(ValueError, match="n_streams"):
            simulate_stream_columns([spec])

    def test_non_positive_duration(self):
        spec = StreamColumnSpec(transit_long_path(), 4, 0.0, 20.0, DIGEST)
        with pytest.raises(ValueError, match="duration_s"):
            simulate_stream_columns([spec])

    def test_non_positive_rate_or_slot(self):
        spec = StreamColumnSpec(transit_long_path(), 4, 120.0, 20.0, DIGEST)
        with pytest.raises(ValueError):
            simulate_stream_columns([spec], packets_per_second=0.0)
        with pytest.raises(ValueError):
            simulate_stream_columns([spec], slot_s=0.0)

    def test_sub_packet_rate_rejected(self):
        spec = StreamColumnSpec(transit_long_path(), 4, 120.0, 20.0, DIGEST)
        with pytest.raises(ValueError, match="sub-packet-rate"):
            simulate_stream_columns([spec], packets_per_second=0.05)

    def test_bad_chunk_size(self):
        spec = StreamColumnSpec(transit_long_path(), 4, 120.0, 20.0, DIGEST)
        with pytest.raises(ValueError, match="max_rows_per_pass"):
            simulate_stream_columns([spec], max_rows_per_pass=0)


class TestInternals:
    def test_stream_keys_slice_consistent(self):
        # Keys depend only on (digest, salt, absolute index) — a spec
        # split across chunks sees the same keys as one whole pass.
        whole = _stream_keys(DIGEST, 0, 0, 10)
        assert np.array_equal(whole[3:7], _stream_keys(DIGEST, 0, 3, 7))

    def test_stream_keys_salted(self):
        assert not np.array_equal(
            _stream_keys(DIGEST, 0, 0, 10), _stream_keys(DIGEST, 1, 0, 10)
        )

    def test_group_rows_matches_concatenated_aranges(self):
        starts = np.array([0, 5, 5, 100], dtype=np.int64)
        lens = np.array([3, 1, 4, 2], dtype=np.int64)
        expected = np.concatenate([np.arange(s, s + n) for s, n in zip(starts, lens)])
        assert np.array_equal(_group_rows(starts, lens), expected)

    def test_binom_quantile_matches_scipy(self):
        from scipy.stats import binom

        rng = np.random.default_rng(5)
        u = rng.random(4000)
        # Spans all three regimes: fast-zero, stepwise, and scipy ppf.
        n = rng.integers(1, 6000, size=4000)
        p = rng.uniform(0.0, 0.2, size=4000)
        expected = binom.ppf(u, n, p).astype(np.int64)
        assert np.array_equal(_binom_quantile(u, n, p), expected)

    def test_binom_quantile_zero_loss_fast_path(self):
        u = np.array([1e-12, 0.5])
        n = np.array([2100, 2100])
        p = np.array([0.0, 0.0])
        assert np.array_equal(_binom_quantile(u, n, p), [0, 0])
