"""Unit tests for stream/probe transmission simulation."""

import numpy as np
import pytest

from repro.dataplane.link import PathSegment, SegmentKind
from repro.dataplane.path import DataPath
from repro.dataplane.transmit import (
    combine_rates,
    simulate_ping,
    simulate_probe_round,
    simulate_stream,
)
from repro.geo.cities import city_by_name
from repro.net.asn import ASType

AMS = city_by_name("Amsterdam").location
SIN = city_by_name("Singapore").location


def transit_path() -> DataPath:
    return DataPath(
        segments=[
            PathSegment(kind=SegmentKind.TRANSIT, start=AMS, end=SIN, owner_type=ASType.LTP)
        ],
        description="test",
    )


def lossless_path() -> DataPath:
    return DataPath(
        segments=[PathSegment(kind=SegmentKind.PEERING, start=AMS, end=AMS)],
        description="clean",
    )


class TestCombineRates:
    def test_empty_with_slots(self):
        assert combine_rates([], 5).shape == (5,)

    def test_combination_formula(self):
        a = np.array([0.1, 0.0])
        b = np.array([0.1, 0.2])
        combined = combine_rates([a, b])
        assert combined[0] == pytest.approx(1 - 0.9 * 0.9)
        assert combined[1] == pytest.approx(0.2)

    def test_never_exceeds_one(self):
        a = np.array([0.9])
        combined = combine_rates([a, a, a])
        assert combined[0] <= 1.0


class TestSimulateStream:
    def test_slot_accounting(self, rng):
        result = simulate_stream(transit_path(), rng=rng)
        assert result.n_slots == 24
        assert result.packets_sent == 24 * 2100
        assert 0 <= result.packets_lost <= result.packets_sent
        assert result.lossy_slots <= result.n_slots

    def test_loss_percent_consistent(self, rng):
        result = simulate_stream(transit_path(), rng=rng)
        expected = 100.0 * result.packets_lost / result.packets_sent
        assert result.loss_percent == pytest.approx(expected)

    def test_lossless_path(self, rng):
        result = simulate_stream(lossless_path(), rng=rng)
        assert result.packets_lost == 0
        assert result.lossy_slots == 0

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            simulate_stream(transit_path(), duration_s=0, rng=rng)
        with pytest.raises(ValueError):
            simulate_stream(transit_path(), packets_per_second=0, rng=rng)

    def test_720p_has_more_jitter_than_1080p(self, rng):
        path = transit_path()
        j1080 = np.mean(
            [
                simulate_stream(path, packets_per_second=420, rng=rng).jitter_p95_ms
                for _ in range(300)
            ]
        )
        j720 = np.mean(
            [
                simulate_stream(path, packets_per_second=260, rng=rng).jitter_p95_ms
                for _ in range(300)
            ]
        )
        assert j720 > j1080

    def test_rtt_constant_per_path(self, rng):
        path = transit_path()
        r1 = simulate_stream(path, rng=rng)
        r2 = simulate_stream(path, rng=rng)
        assert r1.rtt_ms == r2.rtt_ms == path.rtt_ms()


class TestSimulatePing:
    def test_count_respected(self, rng):
        result = simulate_ping(lossless_path(), count=5, rng=rng)
        assert result.sent == 5
        assert result.lost == 0
        assert len(result.rtts_ms) == 5

    def test_min_rtt_above_propagation(self, rng):
        path = transit_path()
        result = simulate_ping(path, rng=rng)
        assert result.min_rtt_ms >= path.rtt_ms()

    def test_all_lost_returns_none(self, rng):
        result = simulate_ping(lossless_path(), count=3, rng=rng)
        assert result.min_rtt_ms is not None
        empty = type(result)(sent=3, lost=3, rtts_ms=[])
        assert empty.min_rtt_ms is None
        assert empty.loss_fraction == 1.0

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError):
            simulate_ping(lossless_path(), count=0, rng=rng)


class TestSimulateProbeRound:
    def test_round_shape(self, rng):
        result = simulate_probe_round(lossless_path(), packets=100, rng=rng)
        assert result.sent == 100
        assert result.lost == 0

    def test_burst_amplification_vs_stream(self, rng):
        """Probe rounds see more loss per packet than paced streams on the
        same congested corridor (Sec. 5.1 vs 5.2 reconciliation)."""
        path = transit_path()
        probe_loss = np.mean(
            [
                simulate_probe_round(path, packets=100, rng=rng).loss_fraction
                for _ in range(4000)
            ]
        )
        stream_loss = np.mean(
            [
                simulate_stream(path, rng=rng).packets_lost
                / simulate_stream(path, rng=rng).packets_sent
                for _ in range(500)
            ]
        )
        assert probe_loss > stream_loss

    def test_invalid_packets(self, rng):
        with pytest.raises(ValueError):
            simulate_probe_round(lossless_path(), packets=0, rng=rng)


class TestSimulateStreamBatch:
    def test_shapes_and_accounting(self, rng):
        from repro.dataplane.transmit import simulate_stream_batch

        results = simulate_stream_batch(transit_path(), 6, rng=rng)
        assert len(results) == 6
        for result in results:
            assert result.n_slots == 24
            assert result.packets_sent == 24 * 2100
            assert 0 <= result.packets_lost <= result.packets_sent
            assert result.rtt_ms == results[0].rtt_ms

    def test_partial_final_slot(self, rng):
        from repro.dataplane.transmit import simulate_stream_batch

        results = simulate_stream_batch(transit_path(), 3, duration_s=12.0, rng=rng)
        for result in results:
            assert result.n_slots == 3
            # 2 full slots of 5 s plus a 2 s tail at 420 pps.
            assert result.packets_sent == 2 * 2100 + 840

    def test_lossless_path_stays_lossless(self, rng):
        from repro.dataplane.transmit import simulate_stream_batch

        for result in simulate_stream_batch(lossless_path(), 4, rng=rng):
            assert result.packets_lost == 0

    def test_invalid_args(self, rng):
        from repro.dataplane.transmit import simulate_stream_batch

        with pytest.raises(ValueError):
            simulate_stream_batch(transit_path(), 0, rng=rng)
        with pytest.raises(ValueError):
            simulate_stream_batch(transit_path(), 3, duration_s=0, rng=rng)

    def test_batch_matches_scalar_distribution(self, rng):
        """Batched streams are distributed as scalar streams: compare the
        mean loss and jitter of 300 of each."""
        from repro.dataplane.transmit import simulate_stream_batch

        n = 300
        path = transit_path()
        batch = simulate_stream_batch(path, n, hour_cet=20.0, rng=rng)
        scalar = [simulate_stream(path, hour_cet=20.0, rng=rng) for _ in range(n)]
        for metric in ("loss_percent", "jitter_p95_ms"):
            b = np.array([getattr(r, metric) for r in batch])
            s = np.array([getattr(r, metric) for r in scalar])
            stderr = np.sqrt(b.var() / n + s.var() / n)
            assert abs(b.mean() - s.mean()) < 4 * max(stderr, 1e-9), metric


class TestStreamShapeGuards:
    def test_shape_accounting(self):
        from repro.dataplane.transmit import _stream_shape

        assert _stream_shape(120.0, 420.0, 5.0) == (24, 2100, 2100)
        assert _stream_shape(12.0, 420.0, 5.0) == (3, 2100, 840)

    def test_final_partial_slot_carries_at_least_one_packet(self, rng):
        from repro.dataplane.transmit import _stream_shape

        # A 0.5 ms tail rounds to zero packets; the guard clamps it to
        # one so the slot can never report loss-free traffic it never
        # carried.
        n_slots, per_slot, final = _stream_shape(10.0005, 420.0, 5.0)
        assert (n_slots, per_slot, final) == (3, 2100, 1)
        result = simulate_stream(transit_path(), duration_s=10.0005, rng=rng)
        assert result.packets_sent == 2 * 2100 + 1

    def test_sub_packet_rate_rejected_everywhere(self, rng):
        from repro.dataplane.transmit import simulate_stream_batch

        # 0.05 pps over 5 s slots rounds to zero packets per slot.
        with pytest.raises(ValueError, match="sub-packet-rate"):
            simulate_stream(transit_path(), packets_per_second=0.05, rng=rng)
        with pytest.raises(ValueError, match="sub-packet-rate"):
            simulate_stream_batch(
                transit_path(), 3, packets_per_second=0.05, rng=rng
            )


class TestProbeExtraLoss:
    def test_injected_loss_is_not_burst_amplified(self, rng):
        """An injected DegradedSegment.extra_loss is rate-independent
        path loss: it stacks additively on the probe's amplified
        congestion state instead of being multiplied by the burst
        factor."""
        from repro.dataplane import calibration as cal
        from repro.dataplane.link import degrade_segment

        extra = 0.1
        clean = transit_path()
        degraded = DataPath(
            segments=[degrade_segment(clean.segments[0], extra_loss=extra)],
            description="degraded",
        )
        n = 1500
        clean_loss = np.mean(
            [
                simulate_probe_round(clean, packets=100, rng=rng).loss_fraction
                for _ in range(n)
            ]
        )
        degraded_loss = np.mean(
            [
                simulate_probe_round(degraded, packets=100, rng=rng).loss_fraction
                for _ in range(n)
            ]
        )
        delta = degraded_loss - clean_loss
        # Additive (within sampling noise and rare clipping)...
        assert 0.07 < delta < 0.15
        # ... and nowhere near the old amplified (x8) behaviour.
        assert delta < 0.5 * cal.PROBE_BURST_FACTOR * extra
