"""Unit tests for diurnal congestion profiles."""

import pytest

from repro.dataplane.diurnal import DiurnalProfile, access_profile, transit_profile
from repro.geo.regions import WorldRegion
from repro.net.asn import ASType


class TestDiurnalProfile:
    def test_floor_respected(self):
        profile = DiurnalProfile(amplitude=1.0)
        for hour in range(24):
            assert profile.factor(hour) >= profile.floor

    def test_peak_near_business_hours(self):
        profile = DiurnalProfile(amplitude=1.0, business_weight=1.0, evening_weight=0.0)
        peak_hour = max(range(24), key=profile.factor)
        assert 12 <= peak_hour <= 16

    def test_evening_peak(self):
        profile = DiurnalProfile(amplitude=1.0, business_weight=0.0, evening_weight=1.0)
        peak_hour = max(range(24), key=profile.factor)
        assert 19 <= peak_hour <= 22

    def test_wraparound_continuity(self):
        profile = DiurnalProfile(amplitude=1.0)
        assert profile.factor(23.999) == pytest.approx(profile.factor(0.0), rel=1e-2)

    def test_amplitude_scales_swing(self):
        weak = DiurnalProfile(amplitude=0.2)
        strong = DiurnalProfile(amplitude=2.0)
        swing_weak = max(weak.factor(h) for h in range(24)) - weak.floor
        swing_strong = max(strong.factor(h) for h in range(24)) - strong.floor
        assert swing_strong > 5 * swing_weak

    def test_factor_cet_converts_timezone(self):
        profile = DiurnalProfile(amplitude=1.0, business_weight=1.0, evening_weight=0.0)
        # 14:00 local in AP is 07:00 CET; the CET-based lookup at 07:00
        # must equal the local lookup at 14:00.
        assert profile.factor_cet(7.0, WorldRegion.ASIA_PACIFIC) == pytest.approx(
            profile.factor(14.0)
        )


class TestProfileFactories:
    def test_cahp_is_evening_heavy(self):
        profile = access_profile(WorldRegion.EUROPE, ASType.CAHP)
        assert profile.evening_weight > profile.business_weight

    def test_ec_is_business_heavy(self):
        profile = access_profile(WorldRegion.EUROPE, ASType.EC)
        assert profile.business_weight > profile.evening_weight

    def test_ap_ltp_evening_peak(self):
        # Sec. 5.2.3: AP LTP loss peaks in local evening (home users
        # pulling remote content through transit).
        profile = access_profile(WorldRegion.ASIA_PACIFIC, ASType.LTP)
        assert profile.evening_weight > profile.business_weight

    def test_ap_amplitude_strongest(self):
        ap = access_profile(WorldRegion.ASIA_PACIFIC, ASType.CAHP)
        na = access_profile(WorldRegion.NORTH_CENTRAL_AMERICA, ASType.CAHP)
        assert ap.amplitude > na.amplitude

    def test_transit_profile_positive(self):
        for region in WorldRegion:
            profile = transit_profile(region)
            for hour in (0, 6, 12, 18):
                assert profile.factor(hour) > 0
