"""Unit tests for path assembly."""

import pytest

from repro.dataplane.link import SegmentKind
from repro.dataplane.path import (
    DataPath,
    access_path,
    assemble_as_path_waypoints,
    internet_path,
)
from repro.geo.cities import city_by_name
from repro.net.asn import ASType

AMS = city_by_name("Amsterdam").location


class TestWaypoints:
    def test_waypoints_follow_presence(self, tiny_topology):
        ltp = tiny_topology.ases_of_type(ASType.LTP)[0]
        stub = tiny_topology.ases_of_type(ASType.EC)[0]
        destination = stub.home.location
        waypoints = assemble_as_path_waypoints(
            tiny_topology, (ltp.asn, stub.asn), AMS, destination
        )
        assert waypoints
        # Owner annotations present and of the right types.
        owners = [owner for _, _, owner in waypoints]
        assert ASType.LTP in owners

    def test_unknown_as_raises(self, tiny_topology):
        with pytest.raises(KeyError):
            assemble_as_path_waypoints(tiny_topology, (999999,), AMS, AMS)

    def test_empty_path_no_waypoints(self, tiny_topology):
        assert assemble_as_path_waypoints(tiny_topology, (), AMS, AMS) == []


class TestInternetPath:
    def _dest(self, tiny_topology):
        stub = tiny_topology.ases_of_type(ASType.EC)[0]
        prefix = stub.prefixes[0]
        return stub, prefix, tiny_topology.prefix_location[prefix]

    def test_final_access_segment(self, tiny_topology):
        stub, prefix, destination = self._dest(tiny_topology)
        ltp = tiny_topology.ases_of_type(ASType.LTP)[0]
        path = internet_path(
            tiny_topology,
            (ltp.asn, stub.asn),
            AMS,
            destination,
            destination_as_type=stub.as_type,
        )
        assert path.segments[-1].kind is SegmentKind.ACCESS
        assert path.segments[-1].as_type is stub.as_type

    def test_final_access_false(self, tiny_topology):
        stub, prefix, destination = self._dest(tiny_topology)
        ltp = tiny_topology.ases_of_type(ASType.LTP)[0]
        path = internet_path(
            tiny_topology, (ltp.asn,), AMS, destination, final_access=False
        )
        assert path.segments[-1].kind is SegmentKind.TRANSIT

    def test_first_segment_kind(self, tiny_topology):
        stub, prefix, destination = self._dest(tiny_topology)
        ltp = tiny_topology.ases_of_type(ASType.LTP)[0]
        path = internet_path(
            tiny_topology,
            (ltp.asn, stub.asn),
            AMS,
            destination,
            first_segment_kind=SegmentKind.ACCESS,
        )
        assert path.segments[0].kind is SegmentKind.ACCESS

    def test_rtt_is_double_one_way(self, tiny_topology):
        stub, prefix, destination = self._dest(tiny_topology)
        ltp = tiny_topology.ases_of_type(ASType.LTP)[0]
        path = internet_path(tiny_topology, (ltp.asn,), AMS, destination)
        assert path.rtt_ms() == pytest.approx(2 * path.one_way_delay_ms())

    def test_longer_as_path_not_shorter_distance(self, tiny_topology):
        stub, prefix, destination = self._dest(tiny_topology)
        ltp = tiny_topology.ases_of_type(ASType.LTP)[0]
        direct = internet_path(tiny_topology, (stub.asn,), AMS, destination)
        via = internet_path(tiny_topology, (ltp.asn, stub.asn), AMS, destination)
        assert via.total_distance_km() >= direct.total_distance_km() - 1.0


class TestDataPath:
    def test_concat(self):
        a = access_path(AMS, AMS, description="a")
        b = access_path(AMS, AMS, description="b")
        combined = a.concat(b)
        assert len(combined) == 2
        assert "a" in combined.description and "b" in combined.description

    def test_iteration_and_len(self):
        path = access_path(AMS, AMS)
        assert len(path) == 1
        assert list(path) == path.segments

    def test_access_path_typed(self):
        path = access_path(AMS, AMS, as_type=ASType.CAHP)
        assert path.segments[0].as_type is ASType.CAHP
