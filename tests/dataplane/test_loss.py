"""Unit tests for the loss models."""

import numpy as np
import pytest

from repro.dataplane.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    congestion_loss_probability,
)


class TestBernoulli:
    def test_zero_and_one(self, rng):
        assert BernoulliLoss(0.0).loss_count(1000, rng) == 0
        assert BernoulliLoss(1.0).loss_count(1000, rng) == 1000

    def test_mean_matches(self, rng):
        model = BernoulliLoss(0.05)
        losses = model.loss_count(200_000, rng)
        assert losses / 200_000 == pytest.approx(0.05, rel=0.1)

    def test_sample_shape(self, rng):
        sample = BernoulliLoss(0.5).sample(100, rng)
        assert sample.shape == (100,)
        assert sample.dtype == bool

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)

    def test_negative_count(self, rng):
        with pytest.raises(ValueError):
            BernoulliLoss(0.1).loss_count(-1, rng)


class TestGilbertElliott:
    def test_stationary_bad(self):
        model = GilbertElliottLoss(p_gb=0.01, p_bg=0.09)
        assert model.stationary_bad() == pytest.approx(0.1)

    def test_mean_loss_analytic(self):
        model = GilbertElliottLoss(p_gb=0.01, p_bg=0.09, loss_good=0.0, loss_bad=0.5)
        assert model.mean_loss() == pytest.approx(0.05)

    def test_mean_loss_empirical(self, rng):
        model = GilbertElliottLoss(p_gb=0.02, p_bg=0.2, loss_good=0.001, loss_bad=0.4)
        sample = model.sample(100_000, rng)
        assert sample.mean() == pytest.approx(model.mean_loss(), rel=0.2)

    def test_burstiness(self, rng):
        """GE loss at the same mean must be burstier than Bernoulli."""
        ge = GilbertElliottLoss(p_gb=0.005, p_bg=0.05, loss_good=0.0, loss_bad=0.5)
        bern = BernoulliLoss(ge.mean_loss())
        n = 50_000
        ge_sample = ge.sample(n, rng)
        bern_sample = bern.sample(n, rng)

        def run_lengths(mask: np.ndarray) -> list[int]:
            lengths, current = [], 0
            for lost in mask:
                if lost:
                    current += 1
                elif current:
                    lengths.append(current)
                    current = 0
            if current:
                lengths.append(current)
            return lengths

        ge_runs = run_lengths(ge_sample)
        bern_runs = run_lengths(bern_sample)
        assert np.mean(ge_runs) > np.mean(bern_runs)

    def test_expected_burst_length(self):
        model = GilbertElliottLoss(p_gb=0.01, p_bg=0.1)
        assert model.expected_burst_length() == pytest.approx(10.0)
        stuck = GilbertElliottLoss(p_gb=0.01, p_bg=0.0)
        assert stuck.expected_burst_length() == float("inf")

    def test_degenerate_chain(self):
        model = GilbertElliottLoss(p_gb=0.0, p_bg=0.0)
        assert model.stationary_bad() == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_gb=-0.1, p_bg=0.5)

    def test_zero_packets(self, rng):
        model = GilbertElliottLoss(p_gb=0.1, p_bg=0.1)
        assert model.sample(0, rng).shape == (0,)


class TestCongestionLoss:
    def test_no_loss_below_knee(self):
        assert congestion_loss_probability(0.5) == 0.0
        assert congestion_loss_probability(0.82) == 0.0

    def test_rises_above_knee(self):
        low = congestion_loss_probability(0.85)
        high = congestion_loss_probability(0.99)
        assert 0.0 < low < high <= 1.0

    def test_saturates_at_one(self):
        assert congestion_loss_probability(10.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            congestion_loss_probability(-0.1)
