"""Unit tests for path segments and their loss sampling."""

import numpy as np
import pytest

from repro.dataplane.link import PathSegment, SegmentKind
from repro.geo.cities import city_by_name
from repro.geo.regions import WorldRegion
from repro.net.asn import ASType

AMS = city_by_name("Amsterdam").location
FRA = city_by_name("Frankfurt").location
SIN = city_by_name("Singapore").location
SJS = city_by_name("San Jose").location
ATL = city_by_name("Atlanta").location
HK = city_by_name("Hong Kong").location


def seg(kind=SegmentKind.TRANSIT, start=AMS, end=SIN, **kwargs) -> PathSegment:
    return PathSegment(kind=kind, start=start, end=end, **kwargs)


class TestGeometry:
    def test_distance_and_long_haul(self):
        assert seg().is_long_haul
        assert not seg(end=FRA).is_long_haul

    def test_regions(self):
        s = seg()
        assert s.start_region is WorldRegion.EUROPE
        assert s.end_region is WorldRegion.ASIA_PACIFIC

    def test_delay_includes_per_hop_constant(self):
        zero = seg(end=AMS)
        assert zero.delay_ms() > 0.0

    def test_vns_lower_inflation(self):
        transit = seg(kind=SegmentKind.TRANSIT)
        vns = seg(kind=SegmentKind.VNS_L2)
        assert vns.delay_ms() < transit.delay_ms()


class TestSampling:
    def test_vector_shape_and_bounds(self, rng):
        rates = seg().sample_slot_rates(24, 12.0, rng)
        assert rates.shape == (24,)
        assert (rates >= 0).all() and (rates <= 0.95).all()

    def test_invalid_slots(self, rng):
        with pytest.raises(ValueError):
            seg().sample_slot_rates(0, 12.0, rng)

    def test_invalid_duration(self, rng):
        with pytest.raises(ValueError):
            seg().sample_slot_rates(1, 12.0, rng, duration_s=0.0)

    def test_peering_lossless(self, rng):
        rates = seg(kind=SegmentKind.PEERING).sample_slot_rates(24, 12.0, rng)
        assert (rates == 0).all()

    def test_vns_intra_nearly_lossless(self, rng):
        s = seg(kind=SegmentKind.VNS_L2, start=AMS, end=FRA)
        total = sum(s.sample_slot_rates(24, 12.0, rng).sum() for _ in range(200))
        assert total < 0.05

    def test_vns_long_haul_minor_loss_only(self, rng):
        s = seg(kind=SegmentKind.VNS_L2, start=AMS, end=SIN)
        rates = np.concatenate(
            [s.sample_slot_rates(24, 12.0, rng) for _ in range(500)]
        )
        # Mean well below 0.1% ("minor loss (<0.01%)" typical).
        assert rates.mean() < 1e-3
        assert rates.max() < 5e-3

    def test_transit_ap_worse_than_eu(self, rng):
        ap = seg(start=HK, end=SIN)
        eu_pair = seg(start=AMS, end=city_by_name("Moscow").location)
        mean_ap = np.mean(
            [ap.sample_slot_rates(24, 12.0, rng).mean() for _ in range(800)]
        )
        mean_eu = np.mean(
            [eu_pair.sample_slot_rates(24, 12.0, rng).mean() for _ in range(800)]
        )
        assert mean_ap > mean_eu

    def test_premium_trunk_loses_less(self, rng):
        premium = seg(owner_type=ASType.LTP)
        small = seg(owner_type=ASType.STP)
        mean_premium = np.mean(
            [premium.sample_slot_rates(24, 12.0, rng).mean() for _ in range(800)]
        )
        mean_small = np.mean(
            [small.sample_slot_rates(24, 12.0, rng).mean() for _ in range(800)]
        )
        assert mean_small > mean_premium

    def test_west_coast_discount(self):
        west = seg(start=SJS, end=HK)
        east = seg(start=ATL, end=HK)
        assert west._spread_probability(12.0) < east._spread_probability(12.0)

    def test_access_mean_tracks_base(self, rng):
        s = seg(kind=SegmentKind.ACCESS, start=SIN, end=SIN, as_type=ASType.CAHP)
        samples = np.concatenate(
            [s.sample_slot_rates(24, h % 24, rng) for h in range(2000)]
        )
        # CAHP in AP has base 1.8%; the diurnal-averaged mean should land
        # in the same ballpark.
        assert 0.008 < samples.mean() < 0.035

    def test_access_is_episodic(self, rng):
        s = seg(kind=SegmentKind.ACCESS, start=SIN, end=SIN, as_type=ASType.CAHP)
        samples = np.concatenate(
            [s.sample_slot_rates(24, 12.0, rng) for _ in range(200)]
        )
        zero_fraction = (samples == 0).mean()
        assert zero_fraction > 0.5  # most slots clean

    def test_access_type_ordering_ap(self, rng):
        def mean_for(as_type):
            s = seg(kind=SegmentKind.ACCESS, start=SIN, end=SIN, as_type=as_type)
            return np.mean(
                [s.sample_slot_rates(24, 12.0, rng).mean() for _ in range(2000)]
            )

        ltp, stp, cahp = mean_for(ASType.LTP), mean_for(ASType.STP), mean_for(ASType.CAHP)
        assert ltp < stp < cahp

    def test_short_haul_transit_has_no_spread(self, rng):
        s = seg(start=AMS, end=FRA)
        rates = np.concatenate(
            [s.sample_slot_rates(24, 12.0, rng) for _ in range(300)]
        )
        # Only the floor and rare bursts; typical slot is clean.
        assert np.median(rates) < 1e-5


class TestBatchSampling:
    def test_shape_and_bounds_per_kind(self, rng):
        segments = [
            seg(),
            seg(kind=SegmentKind.ACCESS, start=SIN, end=SIN, as_type=ASType.CAHP),
            seg(kind=SegmentKind.VNS_L2),
            seg(kind=SegmentKind.PEERING, start=AMS, end=FRA),
        ]
        for segment in segments:
            rates = segment.sample_slot_rates_batch(7, 24, 12.0, rng)
            assert rates.shape == (7, 24)
            assert (rates >= 0.0).all() and (rates <= 1.0).all()

    def test_peering_lossless(self, rng):
        s = seg(kind=SegmentKind.PEERING, start=AMS, end=FRA)
        assert s.sample_slot_rates_batch(5, 10, 12.0, rng).sum() == 0.0

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            seg().sample_slot_rates_batch(0, 10, 12.0, rng)
        with pytest.raises(ValueError):
            seg().sample_slot_rates_batch(5, 0, 12.0, rng)
        with pytest.raises(ValueError):
            seg().sample_slot_rates_batch(5, 10, 12.0, rng, duration_s=-1.0)

    def test_batch_rows_match_scalar_distribution(self, rng):
        """A batch of K rows must carry the same mean rate as K scalar
        draws — the batch vectorises the arithmetic, not the model."""
        for segment in (
            seg(),  # long-haul AP transit: spread + bursts
            seg(kind=SegmentKind.ACCESS, start=SIN, end=SIN, as_type=ASType.CAHP),
            seg(kind=SegmentKind.VNS_L2),
        ):
            n, slots = 400, 24
            batch = segment.sample_slot_rates_batch(n, slots, 20.0, rng)
            scalar = np.stack(
                [segment.sample_slot_rates(slots, 20.0, rng) for _ in range(n)]
            )
            b, s = batch.mean(), scalar.mean()
            spread = np.sqrt(
                batch.mean(axis=1).var() / n + scalar.mean(axis=1).var() / n
            )
            assert abs(b - s) < 5 * max(spread, 1e-6), segment.kind
