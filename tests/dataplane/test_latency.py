"""Unit tests for propagation delay."""

import pytest

from repro.dataplane.latency import path_propagation_ms, propagation_delay_ms
from repro.geo.coords import GeoPoint


class TestPropagationDelay:
    def test_zero_distance(self):
        assert propagation_delay_ms(0.0) == 0.0

    def test_scale(self):
        # ~1000 km of inflated fibre is around 7.5 ms one way.
        delay = propagation_delay_ms(1000.0)
        assert 4.0 < delay < 12.0

    def test_monotone_in_distance(self):
        assert propagation_delay_ms(2000.0) > propagation_delay_ms(1000.0)

    def test_inflation_floor(self):
        with pytest.raises(ValueError):
            propagation_delay_ms(100.0, inflation=0.9)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay_ms(-1.0)

    def test_transatlantic_rtt_plausible(self):
        # AMS-NYC is ~5900 km; one-way inflated delay should put the RTT
        # in the familiar 70-100 ms window.
        one_way = propagation_delay_ms(5900.0)
        assert 35.0 < one_way < 50.0


class TestPathPropagation:
    def test_empty_and_single(self):
        assert path_propagation_ms([]) == 0.0
        assert path_propagation_ms([GeoPoint(0, 0)]) == 0.0

    def test_additivity(self):
        a = GeoPoint(0, 0)
        b = GeoPoint(0, 10)
        c = GeoPoint(0, 20)
        assert path_propagation_ms([a, b, c]) == pytest.approx(
            path_propagation_ms([a, b]) + path_propagation_ms([b, c])
        )

    def test_detour_is_longer(self):
        a = GeoPoint(0, 0)
        b = GeoPoint(40, 10)  # far off the direct path
        c = GeoPoint(0, 20)
        assert path_propagation_ms([a, b, c]) > path_propagation_ms([a, c])
