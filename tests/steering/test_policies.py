"""Unit tests for the steering policies and the decision engine."""

import pickle

import pytest

from repro.steering import (
    AlwaysVnsPolicy,
    CostBudgetedPolicy,
    PathCandidates,
    PathChoice,
    PathHealthTable,
    SteeringContext,
    SteeringEngine,
    SteeringPolicy,
    ThresholdOffloadPolicy,
    Transport,
    call_unit_draw,
    make_policy,
    stream_payload_bytes,
)
from repro.steering.health import HealthEntry


def _healthy_table(
    *, vns_rtt=80.0, inet_rtt=85.0, vns_loss=0.001, inet_loss=0.001
) -> PathHealthTable:
    table = PathHealthTable(min_samples=1)
    for _ in range(3):
        table.observe(
            "EU", "NA", Transport.VNS, rtt_ms=vns_rtt, loss_fraction=vns_loss, t_hours=1.0
        )
        table.observe(
            "EU",
            "NA",
            Transport.INTERNET,
            rtt_ms=inet_rtt,
            loss_fraction=inet_loss,
            t_hours=1.0,
        )
    return table


def _ctx(table, *, candidates=None, call_id=0, t_hours=1.0):
    return SteeringContext(
        src_region="EU",
        dst_region="NA",
        t_hours=t_hours,
        seed=7,
        call_id=call_id,
        candidates=candidates,
        vns_health=table.lookup("EU", "NA", Transport.VNS, t_hours=t_hours),
        internet_health=table.lookup("EU", "NA", Transport.INTERNET, t_hours=t_hours),
    )


class TestHelpers:
    def test_stream_payload_bytes_matches_slot_accounting(self):
        # 12 s at 420 pps in 5 s slots: 2 full slots (2100 packets each)
        # plus a 2 s final slot (840 packets), 1200 bytes per packet.
        assert stream_payload_bytes(12.0, 420.0, 5.0) == (2100 * 2 + 840) * 1200

    def test_call_unit_draw_deterministic_and_uniformish(self):
        draws = [call_unit_draw(7, "EU", "NA", i) for i in range(200)]
        assert draws == [call_unit_draw(7, "EU", "NA", i) for i in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.3 < sum(draws) / len(draws) < 0.7
        # Different seeds decorrelate.
        assert call_unit_draw(8, "EU", "NA", 0) != call_unit_draw(7, "EU", "NA", 0)

    def test_make_policy_registry(self):
        assert make_policy("always_vns").name == "always_vns"
        assert make_policy("threshold_offload", rtt_delta_ms=5.0).rtt_delta_ms == 5.0
        with pytest.raises(KeyError):
            make_policy("nope")

    def test_policies_satisfy_protocol(self):
        for name in ("always_vns", "threshold_offload", "cost_budgeted"):
            assert isinstance(make_policy(name), SteeringPolicy)


class TestAlwaysVns:
    def test_never_offloads(self):
        policy = AlwaysVnsPolicy()
        decision = policy.decide(_ctx(_healthy_table()))
        assert decision.choice is PathChoice.VNS
        assert not decision.offloaded
        assert not policy.call_sensitive


class TestThresholdOffload:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdOffloadPolicy(rtt_delta_ms=-1.0)

    def test_no_telemetry_stays_on_vns(self):
        decision = ThresholdOffloadPolicy().decide(_ctx(PathHealthTable()))
        assert decision.choice is PathChoice.VNS
        assert decision.reason == "no_telemetry"

    def test_loss_gate(self):
        table = _healthy_table(inet_loss=0.02)  # +1.9pp over VNS
        decision = ThresholdOffloadPolicy(loss_delta_pct=0.25).decide(_ctx(table))
        assert decision.reason == "loss_gate"

    def test_probed_rtt_gate(self):
        table = _healthy_table(inet_rtt=140.0)
        decision = ThresholdOffloadPolicy(rtt_delta_ms=15.0).decide(_ctx(table))
        assert decision.reason == "probed_rtt_gate"

    def test_offloads_comparable_call(self):
        candidates = PathCandidates(vns_rtt_ms=80.0, internet_rtt_ms=88.0)
        decision = ThresholdOffloadPolicy().decide(
            _ctx(_healthy_table(), candidates=candidates)
        )
        assert decision.choice is PathChoice.INTERNET
        assert decision.offloaded

    def test_per_call_rtt_gate_bounds_regression(self):
        # Corridor telemetry passes, but this call's own Internet path is
        # 40 ms worse — the per-call gate keeps it on VNS.
        candidates = PathCandidates(vns_rtt_ms=80.0, internet_rtt_ms=120.0)
        decision = ThresholdOffloadPolicy(rtt_delta_ms=15.0).decide(
            _ctx(_healthy_table(), candidates=candidates)
        )
        assert decision.choice is PathChoice.VNS
        assert decision.reason == "path_rtt_gate"

    def test_detour_rescues_bad_direct_path(self):
        candidates = PathCandidates(
            vns_rtt_ms=80.0,
            internet_rtt_ms=120.0,
            detour_rtt_ms=90.0,
            detour_pop="AMS",
        )
        decision = ThresholdOffloadPolicy(rtt_delta_ms=15.0).decide(
            _ctx(_healthy_table(), candidates=candidates)
        )
        assert decision.choice is PathChoice.POP_DETOUR
        assert decision.detour_pop == "AMS"
        assert decision.offloaded


class TestCostBudgeted:
    def test_decide_before_prepare_raises(self):
        with pytest.raises(RuntimeError):
            CostBudgetedPolicy().decide(_ctx(_healthy_table()))

    def test_validation(self):
        with pytest.raises(ValueError):
            CostBudgetedPolicy(budget_bytes=-1)

    def test_unmeasured_corridor_priced_last(self):
        policy = CostBudgetedPolicy()
        healthy = _healthy_table()
        cheap = policy.offload_penalty(
            healthy.lookup("EU", "NA", Transport.VNS, t_hours=1.0),
            healthy.lookup("EU", "NA", Transport.INTERNET, t_hours=1.0),
        )
        assert cheap < policy.offload_penalty(None, None)

    def test_zero_budget_offloads_everything(self):
        policy = CostBudgetedPolicy(budget_bytes=0)
        plan = policy.prepare({("EU", "NA"): 1000, ("AP", "EU"): 500}, _healthy_table())
        assert plan == {("EU", "NA"): 1.0, ("AP", "EU"): 1.0}

    def test_infinite_budget_keeps_everything(self):
        policy = CostBudgetedPolicy(budget_bytes=10_000)
        plan = policy.prepare({("EU", "NA"): 1000}, _healthy_table())
        assert plan == {}
        decision = policy.decide(_ctx(_healthy_table()))
        assert decision.reason == "within_budget"

    def test_marginal_corridor_split_fractionally(self):
        # One corridor, budget covers half its bytes: the plan offloads a
        # 0.5 fraction, and the per-call draws realise roughly that share.
        policy = CostBudgetedPolicy(budget_bytes=500)
        plan = policy.prepare({("EU", "NA"): 1000}, _healthy_table())
        assert plan[("EU", "NA")] == pytest.approx(0.5)
        table = _healthy_table()
        offloaded = sum(
            policy.decide(_ctx(table, call_id=i)).offloaded for i in range(400)
        )
        assert 120 < offloaded < 280

    def test_decisions_are_order_free(self):
        policy = CostBudgetedPolicy(budget_bytes=500)
        policy.prepare({("EU", "NA"): 1000}, _healthy_table())
        table = _healthy_table()
        forward = [policy.decide(_ctx(table, call_id=i)).choice for i in range(50)]
        backward = [
            policy.decide(_ctx(table, call_id=i)).choice for i in reversed(range(50))
        ]
        assert forward == list(reversed(backward))


class TestSteeringEngine:
    def test_memoises_call_insensitive_policies(self):
        engine = SteeringEngine(health=_healthy_table(), policy=AlwaysVnsPolicy())
        first = engine.decide_for_regions("EU", "NA", 1.0)
        second = engine.decide_for_regions("EU", "NA", 2.0)  # same 4 h bucket
        assert first is second
        assert len(engine._memo) == 1

    def test_no_memo_for_call_sensitive_policies(self):
        engine = SteeringEngine(
            health=_healthy_table(), policy=ThresholdOffloadPolicy()
        )
        engine.decide_for_regions("EU", "NA", 1.0)
        assert engine._memo == {}

    def test_unknown_prefix_decides_as_vns(self):
        engine = SteeringEngine(
            health=_healthy_table(), policy=ThresholdOffloadPolicy(), region_of={}
        )
        # decide() maps unknown prefixes to "??", which has no telemetry.
        decision = engine.decide_for_regions("??", "??", 1.0)
        assert decision.reason == "no_telemetry"

    def test_engine_pickles(self):
        engine = SteeringEngine(
            health=_healthy_table(), policy=ThresholdOffloadPolicy(), seed=3
        )
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.decide_for_regions("EU", "NA", 1.0) == engine.decide_for_regions(
            "EU", "NA", 1.0
        )

    def test_for_service_builds_region_map(self, small_world):
        engine = SteeringEngine.for_service(
            small_world.service, _healthy_table(), AlwaysVnsPolicy(), seed=1
        )
        assert len(engine.region_of) == len(
            small_world.service.topology.prefix_location
        )
        prefix = next(iter(engine.region_of))
        assert engine.decide(prefix, prefix, 0.0).choice is PathChoice.VNS
