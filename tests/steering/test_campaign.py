"""Steering end-to-end: campaign engine, sharded identity, call_paths.

The load-bearing guarantees:

* adding a steering engine never perturbs the baseline vns/internet
  report columns (the detour batch draws strictly after them);
* a sharded steered campaign reproduces the sequential report byte for
  byte (decisions are pure per call);
* the threshold policy's mean QoE regression stays within its configured
  deltas (the per-call RTT gate bounds it by construction).
"""

import json

import pytest

from repro.steering import (
    PathChoice,
    SteeringEngine,
    SteeringTelemetry,
    make_policy,
)
from repro.workload import (
    CallArrivalProcess,
    CampaignConfig,
    CampaignEngine,
    ShardedCampaignRunner,
    ShardPlan,
    UserPopulation,
)

RTT_DELTA_MS = 15.0
LOSS_DELTA_PCT = 0.25


@pytest.fixture(scope="module")
def campaign_calls(small_world):
    population = UserPopulation.sample(small_world.topology, 60, seed=5)
    return CallArrivalProcess(population, calls_per_user_day=3.0, seed=6).generate(
        days=1
    )


@pytest.fixture(scope="module")
def health_table(small_world):
    return SteeringTelemetry(
        small_world.service, seed=11, packets_per_round=20
    ).collect(days=1, minutes_between_rounds=480.0, hosts_per_type_per_region=1)


@pytest.fixture(scope="module")
def config():
    return CampaignConfig(seed=7)


def _threshold_engine(health_table, config):
    policy = make_policy(
        "threshold_offload", rtt_delta_ms=RTT_DELTA_MS, loss_delta_pct=LOSS_DELTA_PCT
    )
    return SteeringEngine(health=health_table, policy=policy, seed=config.seed)


def _strip_steering(report_dict):
    bare = {k: v for k, v in report_dict.items() if k != "steering"}
    bare["pairs"] = {
        key: {k: v for k, v in pair.items() if k != "steering"}
        for key, pair in report_dict["pairs"].items()
    }
    return bare


class TestSteeredCampaign:
    def test_baseline_columns_unperturbed(
        self, small_world, campaign_calls, health_table, config
    ):
        baseline = CampaignEngine(small_world.service, config).run(campaign_calls)
        steered = CampaignEngine(
            small_world.service,
            config,
            steering=_threshold_engine(health_table, config),
        ).run(campaign_calls)
        assert baseline.report.steering is None
        assert json.dumps(baseline.report.to_dict(), sort_keys=True) == json.dumps(
            _strip_steering(steered.report.to_dict()), sort_keys=True
        )

    def test_threshold_offloads_within_qoe_bounds(
        self, small_world, campaign_calls, health_table, config
    ):
        run = CampaignEngine(
            small_world.service,
            config,
            steering=_threshold_engine(health_table, config),
        ).run(campaign_calls)
        steering = run.report.steering
        assert steering is not None
        assert steering["policy"] == "threshold_offload"
        assert steering["offload_rate"] > 0.0
        assert steering["backbone_bytes_saved"] > 0
        assert steering["backbone_bytes_saved"] <= steering["backbone_bytes"]
        delta = steering["qoe_delta_vs_vns"]
        assert delta["delay_ms_mean"] <= RTT_DELTA_MS
        assert delta["loss_pct_mean"] <= LOSS_DELTA_PCT

    def test_call_results_carry_decisions(
        self, small_world, campaign_calls, health_table, config
    ):
        run = CampaignEngine(
            small_world.service,
            config,
            steering=_threshold_engine(health_table, config),
        ).run(campaign_calls)
        assert all(r.decision is not None for r in run.results)
        assert all(r.steered is not None for r in run.results)
        assert all(r.backbone_bytes > 0 for r in run.results)
        for result in run.results:
            if result.decision.choice is PathChoice.VNS:
                assert result.steered is result.via_vns
            elif result.decision.choice is PathChoice.INTERNET:
                assert result.steered is result.via_internet
            else:
                # A detoured stream is a third draw over a third path.
                assert result.steered is not result.via_vns
                assert result.steered is not result.via_internet

    def test_always_vns_is_the_null_policy(
        self, small_world, campaign_calls, health_table, config
    ):
        engine = SteeringEngine(
            health=health_table, policy=make_policy("always_vns"), seed=config.seed
        )
        run = CampaignEngine(small_world.service, config, steering=engine).run(
            campaign_calls
        )
        steering = run.report.steering
        assert steering["offload_rate"] == 0.0
        assert steering["backbone_bytes_saved"] == 0
        assert steering["qoe_delta_vs_vns"] == {
            "delay_ms_mean": 0.0,
            "loss_pct_mean": 0.0,
        }

    def test_sharded_report_byte_identical(
        self, small_world, campaign_calls, health_table, config
    ):
        sequential = CampaignEngine(
            small_world.service,
            config,
            steering=_threshold_engine(health_table, config),
        ).run(campaign_calls)
        sharded = ShardedCampaignRunner(
            small_world.service,
            config,
            ShardPlan(n_workers=2, n_shards=3, force_inprocess=True),
            steering=_threshold_engine(health_table, config),
        ).run(campaign_calls)
        assert sharded.report.to_json() == sequential.report.to_json()

    def test_cost_budget_is_respected(
        self, small_world, campaign_calls, health_table, config
    ):
        from repro.experiments.steering import corridor_payload_bytes

        matrix = corridor_payload_bytes(campaign_calls, config)
        budget = int(sum(matrix.values()) * 0.4)
        policy = make_policy("cost_budgeted", budget_bytes=budget)
        policy.prepare(matrix, health_table)
        engine = SteeringEngine(health=health_table, policy=policy, seed=config.seed)
        run = CampaignEngine(small_world.service, config, steering=engine).run(
            campaign_calls
        )
        steering = run.report.steering
        # The greedy plan targets offloading ~60% of projected bytes; the
        # realised share tracks it (fractional split is exact only in
        # expectation, and failed calls drop out of the projection).
        assert 0.4 <= steering["backbone_saved_fraction"] <= 0.8
        assert steering["offload_rate"] > 0.0


class TestCallPathsSteering:
    def test_decision_and_detour_populated(self, small_world, health_table, config):
        service = small_world.service
        engine = SteeringEngine.for_service(
            service,
            health_table,
            make_policy("threshold_offload", rtt_delta_ms=RTT_DELTA_MS),
            seed=config.seed,
        )
        prefixes = sorted(service.topology.prefix_location, key=str)
        steered_any = False
        for src, dst in zip(prefixes[:10], prefixes[10:20]):
            paths = service.call_paths(
                src,
                service.topology.prefix_location[src],
                dst,
                service.topology.prefix_location[dst],
                steering=engine,
                t_hours=4.0,
                call_id=1,
            )
            if paths is None:
                continue
            steered_any = True
            assert paths.decision is not None
            assert paths.chosen in (paths.via_vns, paths.via_internet, paths.via_detour)
            if paths.via_detour is not None:
                # The detour leaves at the entry PoP: no backbone circuits.
                from repro.dataplane.link import SegmentKind

                kinds = {segment.kind for segment in paths.via_detour.segments}
                assert SegmentKind.VNS_L2 not in kinds
        assert steered_any

    def test_unsteered_call_paths_unchanged(self, small_world):
        service = small_world.service
        prefixes = sorted(service.topology.prefix_location, key=str)
        for src, dst in zip(prefixes[:5], prefixes[5:10]):
            paths = service.call_paths(
                src,
                service.topology.prefix_location[src],
                dst,
                service.topology.prefix_location[dst],
            )
            if paths is None:
                continue
            assert paths.decision is None
            assert paths.via_detour is None
            assert paths.chosen is paths.via_vns
