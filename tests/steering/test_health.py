"""Unit tests for the path-health telemetry store."""

import pytest

from repro.steering.health import (
    AGGREGATE_BUCKET,
    HealthEntry,
    PathHealthTable,
    Transport,
)


def _fill(table, src="EU", dst="NA", transport=Transport.INTERNET, n=3, t0=0.0):
    for i in range(n):
        table.observe(
            src,
            dst,
            transport,
            rtt_ms=100.0 + i,
            loss_fraction=0.01,
            t_hours=t0 + float(i),
        )


class TestHealthEntry:
    def test_first_sample_seeds_ewma(self):
        entry = HealthEntry()
        entry.observe(80.0, 0.02, t_hours=1.0, alpha=0.3)
        assert entry.rtt_ms == 80.0
        assert entry.loss_fraction == 0.02
        assert entry.samples == 1

    def test_ewma_moves_toward_new_observations(self):
        entry = HealthEntry()
        entry.observe(100.0, 0.0, t_hours=0.0, alpha=0.5)
        entry.observe(200.0, 0.1, t_hours=1.0, alpha=0.5)
        assert entry.rtt_ms == pytest.approx(150.0)
        assert entry.loss_fraction == pytest.approx(0.05)

    def test_staleness(self):
        entry = HealthEntry()
        entry.observe(100.0, 0.0, t_hours=10.0, alpha=0.3)
        assert not entry.is_stale(now_hours=50.0, max_age_hours=48.0)
        assert entry.is_stale(now_hours=60.0, max_age_hours=48.0)

    def test_loss_percent(self):
        entry = HealthEntry(loss_fraction=0.015)
        assert entry.loss_percent == pytest.approx(1.5)


class TestPathHealthTable:
    def test_validation(self):
        with pytest.raises(ValueError):
            PathHealthTable(alpha=0.0)
        with pytest.raises(ValueError):
            PathHealthTable(bucket_hours=5.0)  # does not divide 24
        with pytest.raises(ValueError):
            PathHealthTable(max_age_hours=0.0)
        with pytest.raises(ValueError):
            PathHealthTable(min_samples=0)

    def test_observe_fills_bucket_and_aggregate(self):
        table = PathHealthTable(bucket_hours=4.0)
        table.observe(
            "EU", "NA", Transport.VNS, rtt_ms=90.0, loss_fraction=0.0, t_hours=5.0
        )
        assert len(table) == 2  # bucket 1 plus the all-day aggregate
        assert table.bucket_of(5.0) == 1

    def test_lookup_needs_confidence(self):
        table = PathHealthTable(min_samples=3)
        _fill(table, n=2)
        assert table.lookup("EU", "NA", Transport.INTERNET, t_hours=2.0) is None
        _fill(table, n=1, t0=2.0)
        assert table.lookup("EU", "NA", Transport.INTERNET, t_hours=2.0) is not None

    def test_lookup_falls_back_to_aggregate_bucket(self):
        table = PathHealthTable(bucket_hours=4.0, min_samples=1)
        # Observations land in the morning bucket; an evening query has
        # no bucket entry and must serve the all-day aggregate.
        _fill(table, n=3, t0=1.0)
        evening = table.lookup("EU", "NA", Transport.INTERNET, t_hours=20.0)
        assert evening is not None
        morning = table.lookup("EU", "NA", Transport.INTERNET, t_hours=2.0)
        assert morning is not None
        # The aggregate saw the same three samples here, but the morning
        # hit resolves to the bucket entry, not the fallback.
        key_bucket = ("EU", "NA", Transport.INTERNET.value, table.bucket_of(2.0))
        assert morning is table._entries[key_bucket]
        assert evening is table._entries[("EU", "NA", "internet", AGGREGATE_BUCKET)]

    def test_stale_entries_not_served(self):
        table = PathHealthTable(min_samples=1, max_age_hours=10.0)
        _fill(table, n=3, t0=0.0)
        assert table.lookup("EU", "NA", Transport.INTERNET, t_hours=5.0) is not None
        assert table.lookup("EU", "NA", Transport.INTERNET, t_hours=100.0) is None

    def test_expire_drops_stale_entries(self):
        table = PathHealthTable(min_samples=1, max_age_hours=10.0)
        _fill(table, src="EU", dst="NA", n=3, t0=0.0)
        _fill(table, src="AP", dst="EU", n=3, t0=96.0)
        dropped = table.expire(now_hours=100.0)
        assert dropped == 2  # EU->NA bucket + aggregate
        assert len(table) == 2
        assert table.corridors() == [("AP", "EU")]
        # Expiry at a quiet table is a no-op.
        assert table.expire(now_hours=100.0) == 0

    def test_transports_tracked_independently(self):
        table = PathHealthTable(min_samples=1)
        _fill(table, transport=Transport.VNS, n=3)
        assert table.lookup("EU", "NA", Transport.INTERNET, t_hours=1.0) is None
        assert table.lookup("EU", "NA", Transport.VNS, t_hours=1.0) is not None

    def test_to_dict_aggregates_only(self):
        table = PathHealthTable(min_samples=1)
        _fill(table, n=3)
        view = table.to_dict()
        assert list(view) == ["EU->NA"]
        assert view["EU->NA"]["internet"]["samples"] == 3
