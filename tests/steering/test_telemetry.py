"""Tests for the dual-transport probe telemetry."""

from repro.steering import PathHealthTable, SteeringTelemetry, Transport


def _collect(small_world, seed=11, **kwargs):
    telemetry = SteeringTelemetry(small_world.service, seed=seed, packets_per_round=20)
    defaults = dict(
        days=1, minutes_between_rounds=480.0, hosts_per_type_per_region=1
    )
    defaults.update(kwargs)
    return telemetry, telemetry.collect(**defaults)


class TestSteeringTelemetry:
    def test_collect_fills_both_transports(self, small_world):
        telemetry, table = _collect(small_world)
        assert telemetry.stats.rounds == 3
        assert telemetry.stats.probes > 0
        corridors = table.corridors()
        assert corridors  # probing covered at least one corridor
        served = 0
        for src, dst in corridors:
            for transport in Transport:
                entry = table.lookup(src, dst, transport, t_hours=4.0)
                if entry is not None:
                    assert entry.rtt_ms > 0.0
                    served += 1
        assert served > 0

    def test_same_seed_reproduces_table(self, small_world):
        _, first = _collect(small_world, seed=11)
        _, second = _collect(small_world, seed=11)
        assert first.to_dict() == second.to_dict()

    def test_different_seed_changes_table(self, small_world):
        _, first = _collect(small_world, seed=11)
        _, second = _collect(small_world, seed=12)
        assert first.to_dict() != second.to_dict()

    def test_preseeded_table_accumulates(self, small_world):
        table = PathHealthTable()
        _, first = _collect(small_world, table=table)
        before = len(first)
        _, second = _collect(small_world, table=table)
        assert second is table
        assert len(second) == before  # same corridors, more samples
        entry = next(iter(table._entries.values()))
        assert entry.samples >= 2

    def test_pop_subset(self, small_world):
        telemetry, table = _collect(small_world, pop_codes=("AMS",))
        assert telemetry.stats.probes > 0
        assert all(src == "EU" for src, _ in table.corridors())
